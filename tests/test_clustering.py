"""Tests of degree reduction and the hierarchical clustering (Section 4)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.builder import build_hierarchical_clustering
from repro.clustering.degree_reduction import EdgeKind, reduce_degrees
from repro.clustering.invariants import check_clustering, cluster_vertex_sets
from repro.clustering.model import ClusterKind
from repro.trees import generators as gen
from repro.trees.properties import diameter, max_degree
from repro.trees.tree import RootedTree

from tests.conftest import FAMILIES, FAMILY_IDS, make_sim


class TestDegreeReduction:
    def test_no_op_below_threshold(self):
        t = gen.balanced_kary_tree(100, k=3)
        red = reduce_degrees(t, threshold=5)
        assert red.is_identity
        assert red.tree.num_nodes == 100

    @pytest.mark.parametrize("n,threshold", [(100, 4), (300, 8), (500, 16)])
    def test_star_reduced_to_bounded_degree(self, n, threshold):
        t = gen.star_tree(n)
        red = reduce_degrees(t, threshold=threshold)
        assert max_degree(red.tree) <= threshold + 1
        # Original nodes are preserved; only auxiliary nodes are added.
        assert set(t.nodes()) <= set(red.tree.nodes())
        assert len(red.aux_nodes) == red.tree.num_nodes - n

    def test_edge_kinds_tagged(self):
        t = gen.star_tree(50)
        red = reduce_degrees(t, threshold=5)
        kinds = set(red.edge_kinds.values())
        assert kinds == {EdgeKind.ORIGINAL, EdgeKind.AUXILIARY}
        # every original node keeps exactly one original up-edge
        original_edges = [e for e, k in red.edge_kinds.items() if k == EdgeKind.ORIGINAL]
        assert len(original_edges) == len(t.edges())

    def test_diameter_increase_is_bounded(self):
        t = gen.two_level_tree(900)
        red = reduce_degrees(t, threshold=6)
        assert diameter(red.tree) <= diameter(t) + 2 * math.ceil(math.log(900, 6)) + 2

    def test_original_parent_tracking(self):
        t = gen.star_tree(60)
        red = reduce_degrees(t, threshold=5)
        for aux in red.aux_nodes:
            assert red.original_parent[aux] == 0
        for v in range(1, 60):
            assert red.original_parent[v] == 0

    def test_project_labels_restores_original_edges(self):
        t = gen.star_tree(40)
        red = reduce_degrees(t, threshold=5)
        labels = {(c, p): f"lab-{c}" for c, p in red.tree.edges()}
        projected = red.project_labels(labels)
        assert set(projected) == set(t.edges())

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            reduce_degrees(gen.path_tree(5), threshold=1)


class TestClusteringInvariants:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    @pytest.mark.parametrize("n", [1, 2, 17, 200, 500])
    def test_invariants_hold(self, family, builder, n):
        tree = builder(n)
        sim = make_sim(n)
        red = reduce_degrees(tree, threshold=sim.config.light_threshold())
        hc = build_hierarchical_clustering(sim, red.tree)
        check_clustering(hc)

    @pytest.mark.parametrize("delta", [0.3, 0.5, 0.7])
    def test_invariants_across_delta(self, delta):
        tree = gen.random_attachment_tree(300, seed=7)
        sim = make_sim(300, delta=delta)
        red = reduce_degrees(tree, threshold=sim.config.light_threshold())
        hc = build_hierarchical_clustering(sim, red.tree)
        check_clustering(hc)

    def test_topmost_layer_single_cluster(self):
        tree = gen.random_attachment_tree(200, seed=1)
        sim = make_sim(200)
        hc = build_hierarchical_clustering(sim, tree)
        assert len(hc.layers[hc.num_layers]) == 1
        assert hc.final_cluster.kind == ClusterKind.FINAL

    def test_vertex_sets_cover_tree(self):
        tree = gen.random_attachment_tree(150, seed=3)
        sim = make_sim(150)
        hc = build_hierarchical_clustering(sim, tree)
        sets = cluster_vertex_sets(hc)
        assert sets[hc.final_cluster_id] == set(tree.nodes())

    def test_cluster_sizes_respect_capacity(self):
        tree = gen.path_tree(600)
        sim = make_sim(600)
        hc = build_hierarchical_clustering(sim, tree)
        assert hc.max_cluster_size() <= hc.stats["cluster_capacity"]

    def test_explicit_thresholds_respected(self):
        tree = gen.path_tree(300)
        sim = make_sim(300)
        hc = build_hierarchical_clustering(sim, tree, light_threshold=6)
        check_clustering(hc, cluster_capacity=None)
        # with threshold 6 the path is cut into many small indegree-one clusters
        indeg1 = [c for c in hc.clusters.values() if c.kind == ClusterKind.INDEGREE_ONE]
        assert indeg1
        assert all(c.num_elements <= 12 for c in indeg1)

    def test_rounds_grow_with_diameter_not_size(self):
        wide = gen.broom_tree(800)     # D = 5
        deep = gen.path_tree(800)      # D = 799
        sim_w, sim_d = make_sim(800), make_sim(800)
        hc_w = build_hierarchical_clustering(sim_w, wide)
        hc_d = build_hierarchical_clustering(sim_d, deep)
        assert hc_w.stats["total_rounds"] < hc_d.stats["total_rounds"]

    def test_rounds_roughly_independent_of_n_at_fixed_diameter(self):
        small = gen.broom_tree(200)
        large = gen.broom_tree(1600)
        sim_s, sim_l = make_sim(200), make_sim(1600)
        r_small = build_hierarchical_clustering(sim_s, small).stats["total_rounds"]
        r_large = build_hierarchical_clustering(sim_l, large).stats["total_rounds"]
        assert r_large <= 2 * r_small + 10

    def test_iteration_log_records_shrinkage(self):
        tree = gen.path_tree(500)
        sim = make_sim(500)
        hc = build_hierarchical_clustering(sim, tree)
        log = hc.stats["iteration_log"]
        assert log
        for entry in log:
            assert entry["uncolored_after"] <= entry["uncolored_before"]


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=200), st.sampled_from([0.4, 0.5, 0.6]))
@settings(max_examples=20, deadline=None)
def test_clustering_invariants_on_random_trees(raw, delta):
    n = len(raw) + 1
    parent = {0: 0}
    for v in range(1, n):
        parent[v] = raw[v - 1] % v
    tree = RootedTree.from_parent_map(parent, root=0)
    sim = make_sim(n, delta=delta)
    red = reduce_degrees(tree, threshold=sim.config.light_threshold())
    hc = build_hierarchical_clustering(sim, red.tree)
    check_clustering(hc)
