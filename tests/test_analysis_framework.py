"""Framework tests for mpclint: suppressions, reports, CLI, CI gate.

The rule-by-rule fixture coverage lives in ``test_analysis_rules.py``;
this module exercises the machinery around the rules — the inline
suppression protocol (justification required, unused suppressions are
findings, pseudo-rules unsuppressable), the JSON report contract pinned by
a golden file, and the exit-code gate CI relies on (including the
no-install ``tools/mpclint.py`` entry point on a seeded violation).
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.cli import main as cli_main
from repro.analysis.report import JSON_REPORT_VERSION, render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).parent / "analysis_fixtures"

BAD_EXTREMUM = (
    "# mpclint: module=repro.mpc.fixture_tmp\n"
    "def worst(loads):\n"
    "    return max(loads)\n"
)


def _write(tmp_path: Path, text: str, name: str = "mod.py") -> Path:
    p = tmp_path / name
    p.write_text(text, encoding="utf-8")
    return p


def _run(tmp_path: Path):
    return run_analysis([tmp_path], root=tmp_path)


# --------------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------------- #


def test_trailing_suppression_silences_finding(tmp_path):
    _write(
        tmp_path,
        "# mpclint: module=repro.mpc.fixture_tmp\n"
        "def worst(loads):\n"
        "    return max(loads)  # mpclint: disable=raw-extremum -- loads is never empty here\n",
    )
    report = _run(tmp_path)
    assert report.findings == []
    assert report.suppressions_used == 1


def test_disable_next_line_suppression(tmp_path):
    _write(
        tmp_path,
        "# mpclint: module=repro.mpc.fixture_tmp\n"
        "def worst(loads):\n"
        "    # mpclint: disable-next-line=raw-extremum -- loads is never empty here\n"
        "    return max(loads)\n",
    )
    report = _run(tmp_path)
    assert report.findings == []
    assert report.suppressions_used == 1


def test_suppression_requires_justification(tmp_path):
    _write(
        tmp_path,
        "# mpclint: module=repro.mpc.fixture_tmp\n"
        "def worst(loads):\n"
        "    return max(loads)  # mpclint: disable=raw-extremum\n",
    )
    report = _run(tmp_path)
    rules = sorted(f.rule for f in report.findings)
    # The bare directive is rejected AND does not silence the finding.
    assert rules == ["bad-suppression", "raw-extremum"]


def test_unused_suppression_is_a_finding(tmp_path):
    _write(
        tmp_path,
        "# mpclint: module=repro.mpc.fixture_tmp\n"
        "def fine(loads):\n"
        "    return sum(loads)  # mpclint: disable=raw-extremum -- stale claim\n",
    )
    report = _run(tmp_path)
    assert [f.rule for f in report.findings] == ["unused-suppression"]
    assert "stale claim" in report.findings[0].message


def test_unknown_rule_suppression_is_a_finding(tmp_path):
    _write(
        tmp_path,
        "# mpclint: module=repro.mpc.fixture_tmp\n"
        "x = 1  # mpclint: disable=no-such-rule -- whatever\n",
    )
    report = _run(tmp_path)
    assert [f.rule for f in report.findings] == ["bad-suppression"]
    assert "no-such-rule" in report.findings[0].message


def test_pseudo_rules_cannot_be_suppressed(tmp_path):
    _write(
        tmp_path,
        "# mpclint: module=repro.mpc.fixture_tmp\n"
        "x = 1  # mpclint: disable=unused-suppression -- nice try\n",
    )
    report = _run(tmp_path)
    assert [f.rule for f in report.findings] == ["bad-suppression"]
    assert "cannot be suppressed" in report.findings[0].message


def test_directive_examples_in_docstrings_are_ignored(tmp_path):
    _write(
        tmp_path,
        '"""Usage: add ``# mpclint: disable=raw-extremum`` to the line."""\n'
        "x = 1\n",
    )
    report = _run(tmp_path)
    assert report.findings == []


def test_multi_rule_suppression(tmp_path):
    _write(
        tmp_path,
        "# mpclint: module=repro.mpc.fixture_tmp\n"
        "def worst(loads):\n"
        "    return max(loads)  # mpclint: disable=raw-extremum, shm-view-escape -- one real, one stale\n",
    )
    report = _run(tmp_path)
    # raw-extremum fires and is silenced; shm-view-escape never fires there.
    assert [f.rule for f in report.findings] == ["unused-suppression"]
    assert report.suppressions_used == 1


# --------------------------------------------------------------------------- #
# Engine / report
# --------------------------------------------------------------------------- #


def test_syntax_error_becomes_parse_error_finding(tmp_path):
    _write(tmp_path, "def broken(:\n")
    report = _run(tmp_path)
    assert [f.rule for f in report.findings] == ["parse-error"]
    assert report.exit_code == 1


def test_unknown_select_raises(tmp_path):
    _write(tmp_path, "x = 1\n")
    with pytest.raises(ValueError, match="no-such-rule"):
        run_analysis([tmp_path], root=tmp_path, select=["no-such-rule"])


def test_golden_json_report():
    report = run_analysis([FIXTURES / "raw_extremum" / "bad.py"], root=FIXTURES)
    golden = json.loads(
        (FIXTURES / "golden_raw_extremum.json").read_text(encoding="utf-8")
    )
    assert json.loads(render_json(report)) == golden
    assert golden["version"] == JSON_REPORT_VERSION


def test_text_report_mentions_rule_and_location(tmp_path):
    _write(tmp_path, BAD_EXTREMUM)
    report = _run(tmp_path)
    text = render_text(report)
    assert "mod.py:3:" in text
    assert "[raw-extremum]" in text
    assert "1 finding(s)" in text


# --------------------------------------------------------------------------- #
# CLI / CI gate
# --------------------------------------------------------------------------- #


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    _write(tmp_path, "x = 1\n")
    assert cli_main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exit_one_on_seeded_violation(tmp_path, capsys):
    _write(tmp_path, BAD_EXTREMUM)
    out_file = tmp_path / "report.json"
    assert cli_main([str(tmp_path), "--output", str(out_file)]) == 1
    payload = json.loads(out_file.read_text(encoding="utf-8"))
    assert payload["counts_by_rule"] == {"raw-extremum": 1}
    assert "[raw-extremum]" in capsys.readouterr().out


def test_cli_usage_error_on_missing_path(tmp_path, capsys):
    assert cli_main([str(tmp_path / "nope")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "uncharged-communication",
        "shm-view-escape",
        "stale-cache-invalidation",
        "worker-driver-isolation",
        "raw-extremum",
        "backend-literal-parity",
        "config-docs-drift",
    ):
        assert name in out


def test_cli_json_format(tmp_path, capsys):
    _write(tmp_path, BAD_EXTREMUM)
    assert cli_main([str(tmp_path), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_REPORT_VERSION


def test_mpclint_tool_gates_like_ci(tmp_path):
    """The no-install entry point CI uses fails on a seeded violation."""
    _write(tmp_path, BAD_EXTREMUM)
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "mpclint.py"), str(tmp_path)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1, proc.stderr
    assert "[raw-extremum]" in proc.stdout

    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "tools" / "mpclint.py"),
            str(REPO_ROOT / "src"),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_display_paths_outside_any_repo_root(tmp_path):
    """Findings name the file even when no pyproject.toml ancestor exists.

    Regression: the repo-root fallback used to return the first discovered
    *file* as the root, collapsing every display path to '.'.
    """
    _write(tmp_path, BAD_EXTREMUM, name="viol.py")
    report = run_analysis([tmp_path])  # root derived, not passed
    assert [f.path for f in report.findings] == ["viol.py"]
