"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.mpc import MPCConfig, MPCSimulator
from repro.trees import generators as gen

#: Tree families exercised by most structural tests: (name, generator).
FAMILIES = [
    ("path", gen.path_tree),
    ("star", gen.star_tree),
    ("broom", gen.broom_tree),
    ("caterpillar", gen.caterpillar_tree),
    ("binary", gen.complete_binary_tree),
    ("spider", gen.spider_tree),
    ("two-level", gen.two_level_tree),
    ("random", lambda n: gen.random_attachment_tree(n, seed=11)),
]

FAMILY_IDS = [name for name, _ in FAMILIES]


@pytest.fixture
def simulator():
    """A small simulated MPC deployment."""
    return MPCSimulator(MPCConfig(n=512, delta=0.5))


@pytest.fixture(autouse=True, scope="session")
def _no_shm_leaks():
    """Suite-wide invariant: every shared-memory segment is unlinked.

    The process exec backend creates one POSIX shm segment per superstep
    array; a leak would accumulate in /dev/shm across runs.  Sessions must
    unlink on every path (success, worker death, driver exception), so after
    the whole suite — whichever backends it exercised — nothing may remain.
    """
    yield
    from repro.mpc.exec import shm

    leaked = shm.leaked_segments()
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture(autouse=True)
def _no_shm_leaks_per_chaos_test(request):
    """Per-test shm-leak check for the chaos suite.

    The session-scoped check above would let a leak hide until the end of
    the run (and could not attribute it); chaos tests kill workers at
    deterministic coordinates, so each one asserts immediately that every
    teardown/retry path it exercised unlinked its segments.
    """
    yield
    if request.node.get_closest_marker("chaos") is None:
        return
    from repro.mpc.exec import shm

    leaked = shm.leaked_segments()
    assert not leaked, f"chaos test leaked shared-memory segments: {leaked}"


def make_sim(n: int, delta: float = 0.5, **kw) -> MPCSimulator:
    return MPCSimulator(MPCConfig(n=max(4, n), delta=delta, **kw))
