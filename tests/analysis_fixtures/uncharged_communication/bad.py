# mpclint: module=repro.mpc.fixture_routing
"""True positive: a data-movement helper that never charges the simulator."""


def ship_records(sim, records):
    for rec in records:
        sim.machines[rec.dst].inbox.append(rec)
