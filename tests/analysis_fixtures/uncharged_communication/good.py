# mpclint: module=repro.mpc.fixture_routing_ok
"""Clean: movement charges directly, transitively, or is a nested closure."""


def _deliver(sim, records):
    sim.charge_words(len(records))


def send_all(sim, records):
    _deliver(sim, records)


def rebalance(sim, arr):
    def route(rec):
        return rec.dst

    sim.superstep(route)
