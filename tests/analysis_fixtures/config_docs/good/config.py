# mpclint: module=repro.mpc.config
"""Fixture MPCConfig with every field documented."""


class MPCConfig:
    n: int = 0
    delta: float = 0.25
