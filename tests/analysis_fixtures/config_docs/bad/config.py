# mpclint: module=repro.mpc.config
"""Fixture MPCConfig with an undocumented field (``delta``)."""


class MPCConfig:
    n: int = 0
    delta: float = 0.25
