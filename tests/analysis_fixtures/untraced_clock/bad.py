# mpclint: module=repro.serving.fixture_clock
"""True positives: ad-hoc stdlib clock readings outside repro.obs."""

import time as stdclock
from time import perf_counter


def wall_stamp(event):
    return (stdclock.time(), event)


def measure(fn):
    t0 = stdclock.perf_counter()
    fn()
    return perf_counter() - t0


def deadline_passed(start, budget):
    return stdclock.monotonic() - start > budget
