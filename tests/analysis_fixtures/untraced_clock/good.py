# mpclint: module=repro.serving.fixture_clock_ok
"""Clean: durations via repro.obs.clock; time.sleep is not a reading."""

import time

from repro.obs import clock


def measure(fn):
    t0 = clock.now()
    fn()
    return clock.now() - t0


def deadline_passed(start, budget):
    return clock.monotonic() - start > budget


def backoff(attempt):
    time.sleep(min(1.0, 0.05 * 2**attempt))
    return clock.wall()
