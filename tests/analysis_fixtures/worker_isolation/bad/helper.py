# mpclint: module=repro.mpc.exec.fixture_helper
"""Reachable from the worker entry; imports the simulator (driver-only)."""
from repro.mpc import simulator


def peek(sim):
    return simulator.record_words(sim)
