# mpclint: module=repro.mpc.exec.ops
"""True positive: the worker entry drags in driver-only modules."""
import repro.mpc.exec.fixture_helper
from repro.mpc.darray import DArray

OPS = {}
