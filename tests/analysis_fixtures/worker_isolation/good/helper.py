# mpclint: module=repro.mpc.exec.fixture_helper
"""Worker-side helper: stdlib only."""
import struct


def pack(values):
    return struct.pack(f"{len(values)}d", *values)
