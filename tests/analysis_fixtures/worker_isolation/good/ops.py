# mpclint: module=repro.mpc.exec.ops
"""Clean: the worker entry touches numpy and worker-side helpers only."""
import numpy as np

import repro.mpc.exec.fixture_helper

OPS = {"zero": lambda arrays, lo, hi, slot: arrays[slot][lo:hi].fill(np.float64(0))}
