# mpclint: module=repro.mpc.exec.fixture_wait_ok
"""Clean: every wait loop carries a poll timeout or a monotonic deadline."""

from repro.obs import clock


def supervised_recv(conn, deadline):
    start = clock.monotonic()
    while True:
        if conn.poll(0.02):
            return conn.recv()
        if clock.monotonic() - start > deadline:
            raise TimeoutError("peer went silent")


def idle_poll_with_timeout(conn, parent_alive):
    while not conn.poll(0.25):
        if not parent_alive():
            return None
    return conn.recv()


def heartbeat_sender(stop_event, send, interval):
    while not stop_event.wait(interval):
        send(("hb", None))
