# mpclint: module=repro.mpc.exec.fixture_wait
"""True positives: exec-layer wait loops with no liveness bound."""


def blocking_recv_loop(conn):
    while True:
        msg = conn.recv()
        if msg[0] == "stop":
            return msg


def spin_on_unbounded_poll(conn, parent_alive):
    while not conn.poll():
        if not parent_alive():
            break
    return conn.recv_bytes()


def drain_queue_forever(queue, out):
    while True:
        out.append(queue.get())
