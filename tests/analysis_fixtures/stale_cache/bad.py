# mpclint: module=repro.dynamic.fixture_updates
"""True positives: payload/cache mutations without invalidation."""


def apply_update(tree, node, value):
    tree.node_data[node] = value


def patch_edges(tree, patch):
    tree.edge_data.update(patch)


def poke_plan(cluster):
    cluster._hole_plan = None
