# mpclint: module=repro.dynamic.fixture_updates_ok
"""Clean: mutators invalidate; the owner class manages its own memos."""


def apply_update(tree, cluster, node, value):
    tree.node_data[node] = value
    cluster.invalidate_payload_plans()


class Cluster:
    def invalidate_payload_plans(self):
        self._local_plan = None
        self._hole_plan = None


def read_only(tree, node):
    return tree.node_data[node]
