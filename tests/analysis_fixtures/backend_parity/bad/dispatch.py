# mpclint: module=repro.mpc.fixture_dispatch
"""True positives: incomplete dispatch and an undeclared literal."""


def pick(cfg):
    out = 0
    if cfg.dp_backend == "numpy":
        out = 1
    elif cfg.dp_backend == "auto":
        out = 2
    return out


def typo(cfg):
    backend = cfg.exec_backend
    if backend == "processes":
        return 1
    return 0
