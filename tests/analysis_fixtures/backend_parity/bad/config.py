# mpclint: module=repro.mpc.config
"""Fixture stand-in for MPCConfig's literal validation."""


class MPCConfig:
    def __post_init__(self):
        if self.dp_backend not in ("auto", "numpy", "python"):
            raise ValueError(self.dp_backend)
        if self.exec_backend not in ("inline", "process"):
            raise ValueError(self.exec_backend)
