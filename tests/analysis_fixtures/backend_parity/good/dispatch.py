# mpclint: module=repro.mpc.fixture_dispatch_ok
"""Clean dispatches: full coverage, else branches, guard-style early exits."""


def pick(cfg):
    if cfg.dp_backend == "numpy":
        return 1
    elif cfg.dp_backend in ("auto", "python"):
        return 2
    raise AssertionError("unreachable")


def with_else(cfg):
    if cfg.exec_backend == "inline":
        out = 1
    else:
        out = 2
    return out


def guard_style(cfg):
    backend = getattr(cfg, "exec_backend", "inline")
    if backend != "process":
        return None
    return object()


def exiting_subset(cfg):
    if cfg.exec_backend == "process":
        return "pooled"
    return "direct"
