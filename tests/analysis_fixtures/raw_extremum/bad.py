# mpclint: module=repro.mpc.fixture_extrema
"""True positives: raw extremum folds over possibly-empty record sets."""
import numpy as np


def worst_load(loads):
    return max(loads)


def smallest_key(adj):
    return min(adj.keys())


def numpy_peak(col):
    return np.max(col)
