# mpclint: module=repro.mpc.fixture_extrema_ok
"""Clean: every extremum is guarded, defaulted, or bounded."""
import numpy as np


def worst_load(loads):
    if not loads:
        return 0
    return max(loads)


def smallest_key(adj):
    return min(adj.keys(), default=-1)


def numpy_peak(col):
    return np.max(col, initial=0)


def height(kids):
    return 1 + max(kids) if kids else 0


def guarded_by_len(parts):
    if len(parts) == 0:
        raise ValueError("empty")
    return max(len(p) for p in parts)


def scalar_pair(a, b):
    return min(a, b)
