# mpclint: module=repro.mpc.exec.fixture_shm
"""True positives: raw shared-memory views escaping their frame."""
import numpy as np

from repro.mpc.exec.shm import attach_view


class Holder:
    def grab(self, seg):
        view = np.ndarray((4,), dtype=np.float64, buffer=seg.buf)
        self.view = view
        return view


def attach_all(specs, out):
    for name, shape, dt in specs:
        seg, view = attach_view(name, shape, dt)
        out.append(view)
