# mpclint: module=repro.mpc.exec.fixture_shm_ok
"""Clean: views are consumed in-frame; only copies escape."""
import numpy as np

from repro.mpc.exec.shm import attach_view, detach_view


def read_copy(seg, shape):
    view = np.ndarray(shape, dtype=np.float64, buffer=seg.buf)
    data = np.asarray(view).copy()
    return data


def attach_sum(name, shape, dt):
    seg, view = attach_view(name, shape, dt)
    total = float(view.sum())
    detach_view(seg)
    return total
