"""Unit tests for the MPC simulator substrate (config, machines, supersteps)."""

import pytest

from repro.mpc.config import MPCConfig
from repro.mpc.simulator import CapacityViolation, MPCSimulator
from repro.mpc.words import record_words, word_size


class TestConfig:
    def test_capacity_scales_with_delta(self):
        lo = MPCConfig(n=100_000, delta=0.3)
        hi = MPCConfig(n=100_000, delta=0.7)
        assert lo.machine_capacity < hi.machine_capacity
        assert lo.num_machines > hi.num_machines

    def test_total_memory_covers_input(self):
        cfg = MPCConfig(n=50_000, delta=0.5)
        assert cfg.total_memory_words >= cfg.n

    def test_light_threshold_below_capacity(self):
        cfg = MPCConfig(n=50_000, delta=0.5)
        assert 2 <= cfg.light_threshold() <= cfg.cluster_capacity()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MPCConfig(n=0)
        with pytest.raises(ValueError):
            MPCConfig(n=10, delta=0.0)
        with pytest.raises(ValueError):
            MPCConfig(n=10, delta=1.0)

    def test_scaled_preserves_settings(self):
        cfg = MPCConfig(n=1000, delta=0.4, capacity_factor=2.0, strict_memory=True)
        cfg2 = cfg.scaled(4000)
        assert cfg2.delta == 0.4
        assert cfg2.strict_memory
        assert cfg2.n == 4000


class TestWords:
    def test_small_values_cost_one_word(self):
        assert word_size(7) == 1
        assert word_size(3.14) == 1
        assert word_size(None) == 1
        assert word_size(True) == 1

    def test_big_integers_cost_more(self):
        assert word_size(2 ** 200) > 1

    def test_containers_sum_their_elements(self):
        assert word_size((1, 2, 3)) == 4  # 3 elements + structural overhead
        assert record_words([(1, 2), (3, 4)]) == 6


class TestSimulator:
    def test_scatter_and_gather_roundtrip(self, simulator):
        data = list(range(100))
        simulator.scatter(data)
        assert sorted(simulator.gather()) == data

    def test_superstep_counts_rounds_and_messages(self, simulator):
        simulator.scatter(list(range(20)))

        def compute(machine):
            return [((machine.mid + 1) % simulator.num_machines, x) for x in machine.store]

        simulator.superstep(compute)
        assert simulator.stats.rounds == 1
        assert simulator.stats.total_messages == 20
        total_inbox = sum(len(m.inbox) for m in simulator.machines)
        assert total_inbox == 20

    def test_invalid_destination_raises(self, simulator):
        simulator.scatter([1])
        with pytest.raises(ValueError):
            simulator.superstep(lambda m: [(10_000, "x")] if m.store else [])

    def test_charge_rounds_tracked_separately(self, simulator):
        simulator.charge_rounds(5, label="dp-pass")
        simulator.charge_rounds(3, label="dp-pass")
        assert simulator.stats.charged_rounds == 8
        assert simulator.stats.rounds == 0
        assert simulator.stats.charged_by_label["dp-pass"] == 8
        assert simulator.stats.total_rounds == 8

    def test_charge_negative_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.charge_rounds(-1)

    def test_broadcast_reaches_every_machine(self, simulator):
        simulator.broadcast_to_all(("hello", 42))
        assert all(("hello", 42) in m.inbox for m in simulator.machines)

    def test_strict_bandwidth_raises(self):
        sim = MPCSimulator(MPCConfig(n=64, delta=0.5, strict_bandwidth=True, min_capacity=8))
        sim.scatter(list(range(64)))

        def flood(machine):
            return [(0, tuple(range(50))) for _ in range(20)]

        with pytest.raises(CapacityViolation):
            sim.superstep(flood)


class TestCapacityViolations:
    """Strict-mode raises and lenient-mode recording of both capacity caps."""

    def _flood(self, sim):
        def compute(machine):
            return [(0, tuple(range(50))) for _ in range(20)]

        return compute

    def test_strict_memory_raises_on_scatter_overload(self):
        sim = MPCSimulator(
            MPCConfig(n=16, delta=0.5, strict_memory=True, min_capacity=8, min_machines=2)
        )
        with pytest.raises(CapacityViolation, match="memory cap"):
            sim.scatter([tuple(range(64)) for _ in range(200)])

    def test_strict_memory_raises_on_observed_loads(self):
        sim = MPCSimulator(
            MPCConfig(n=16, delta=0.5, strict_memory=True, min_capacity=8, min_machines=2)
        )
        with pytest.raises(CapacityViolation, match="memory cap"):
            sim.observe_loads([10 * sim.machine_capacity])

    def test_lenient_memory_records_violation(self):
        sim = MPCSimulator(MPCConfig(n=16, delta=0.5, min_capacity=8, min_machines=2))
        sim.scatter([tuple(range(64)) for _ in range(200)])
        assert sim.stats.memory_violations >= 1
        assert sim.stats.peak_machine_words > sim.machine_capacity

    def test_lenient_bandwidth_records_violation(self):
        sim = MPCSimulator(MPCConfig(n=64, delta=0.5, min_capacity=8))
        sim.scatter(list(range(64)))
        sim.superstep(self._flood(sim))
        assert sim.stats.bandwidth_violations >= 1
        assert sim.stats.peak_round_send_words > sim.machine_capacity

    def test_strict_bandwidth_message_names_round(self):
        sim = MPCSimulator(MPCConfig(n=64, delta=0.5, strict_bandwidth=True, min_capacity=8))
        sim.scatter(list(range(64)))
        with pytest.raises(CapacityViolation, match="bandwidth cap"):
            sim.superstep(self._flood(sim))

    def test_snapshot_diff(self, simulator):
        snap = simulator.snapshot()
        simulator.charge_rounds(2)
        simulator.superstep(lambda m: [])
        diff = simulator.stats.diff(snap)
        assert diff.rounds == 1
        assert diff.charged_rounds == 2
