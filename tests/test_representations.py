"""Tests of the representation conversions (Sections 3 and 6.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.representations.base import (
    BFSTraversal,
    ListOfEdges,
    PointersToParents,
    StringOfParentheses,
)
from repro.representations import export, parentheses, traversals
from repro.representations.normalize import normalize_to_rooted_tree, parentheses_to_edges_mpc
from repro.trees import generators as gen
from repro.trees.tree import RootedTree
from repro.trees.validation import assert_same_tree

from tests.conftest import FAMILIES, FAMILY_IDS, make_sim


class TestParenthesesReference:
    def test_paper_example(self):
        # Tree T of Fig. 4 has the string ((()())()) up to child order.
        t = RootedTree.from_edges([(1, 4), (2, 3), (5, 4), (4, 3)])
        text = parentheses.tree_to_parentheses(t)
        assert len(text) == 10
        assert parentheses.is_balanced(text)

    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_roundtrip_shape(self, family, builder):
        t = builder(80)
        text = parentheses.tree_to_parentheses(t)
        back = parentheses.parentheses_to_tree(text)
        assert back.num_nodes == t.num_nodes
        assert sorted(back.subtree_sizes().values()) == sorted(t.subtree_sizes().values())

    def test_malformed_rejected(self):
        for bad in ["", "(", ")", "())(", "()()", "(()", "(a)"]:
            assert not parentheses.is_balanced(bad)
            with pytest.raises(ValueError):
                parentheses.parse_parentheses(bad)


class TestDistributedParenthesesMatcher:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_matches_reference_parser(self, family, builder):
        t = builder(90)
        text = parentheses.tree_to_parentheses(t)
        sim = make_sim(len(text))
        edges = parentheses_to_edges_mpc(sim, text)
        ref = parentheses.parse_parentheses(text)
        assert sorted(edges) == sorted(ref)

    def test_costs_constant_rounds(self):
        t = gen.random_attachment_tree(200, seed=1)
        text = parentheses.tree_to_parentheses(t)
        sim = make_sim(len(text))
        parentheses_to_edges_mpc(sim, text)
        assert sim.stats.rounds <= 10  # summaries + group-by, independent of n and D

    def test_malformed_inputs_raise(self):
        sim = make_sim(16)
        for bad in ["", "((", "))((", "()()"]:
            with pytest.raises(ValueError):
                parentheses_to_edges_mpc(sim, bad)

    @given(st.integers(2, 120), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_random_trees(self, n, seed):
        t = gen.random_attachment_tree(n, seed=seed)
        text = parentheses.tree_to_parentheses(t)
        sim = make_sim(len(text))
        edges = parentheses_to_edges_mpc(sim, text)
        assert sorted(edges) == sorted(parentheses.parse_parentheses(text))


class TestTraversals:
    def test_paper_examples(self):
        t = RootedTree.from_edges([(1, 4), (2, 3), (5, 4), (4, 3)])
        bfs = traversals.tree_to_bfs_traversal(t)
        assert bfs.parents[0] is None
        assert len(bfs.parents) == 5
        ptr = traversals.tree_to_pointers(t)
        decoded = traversals.pointers_to_edges(ptr)
        assert_same_tree(t, RootedTree.from_edges(decoded, root=3))

    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_bfs_dfs_roundtrip_shape(self, family, builder):
        t = builder(70)
        for encode, decode in [
            (traversals.tree_to_bfs_traversal, traversals.bfs_traversal_to_edges),
            (traversals.tree_to_dfs_traversal, traversals.dfs_traversal_to_edges),
        ]:
            rep = encode(t)
            back = RootedTree.from_edges(decode(rep), root=1) if t.num_nodes > 1 else t
            assert back.num_nodes == t.num_nodes
            assert sorted(back.subtree_sizes().values()) == sorted(t.subtree_sizes().values())

    def test_traversal_validation(self):
        with pytest.raises(ValueError):
            traversals.bfs_traversal_to_edges(BFSTraversal([None, None, 1]))
        with pytest.raises(ValueError):
            traversals.bfs_traversal_to_edges(BFSTraversal([None, 99]))
        with pytest.raises(ValueError):
            traversals.pointers_to_edges(
                PointersToParents(parents=[None, "zzz"], labels=["a", "b"])
            )


class TestNormalizeDispatcher:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_all_representations_normalize_to_same_shape(self, family, builder):
        t = builder(60)
        sim = make_sim(60)
        reps = [
            ListOfEdges(t.edges(), directed=True),
            ListOfEdges(t.edges(), directed=False),
            StringOfParentheses(parentheses.tree_to_parentheses(t)),
            traversals.tree_to_bfs_traversal(t),
            traversals.tree_to_dfs_traversal(t),
            traversals.tree_to_pointers(t),
        ]
        shapes = set()
        for rep in reps:
            root = t.root if isinstance(rep, ListOfEdges) else None
            tree = normalize_to_rooted_tree(sim, rep, root=root)
            shapes.add(tuple(sorted(tree.subtree_sizes().values())))
        assert len(shapes) == 1

    def test_unsupported_type_raises(self):
        sim = make_sim(8)
        with pytest.raises(TypeError):
            normalize_to_rooted_tree(sim, object())


class TestExport:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_exports_roundtrip(self, family, builder):
        t = builder(60)
        sim = make_sim(60)
        # pointers
        ptr = export.to_pointers_to_parents(t, sim)
        back = (
            RootedTree.from_edges(traversals.pointers_to_edges(ptr), root=t.root)
            if t.num_nodes > 1
            else t
        )
        assert_same_tree(t, back)
        # BFS / DFS ranks must be consistent parent references
        bfs = export.to_bfs_traversal(t, sim)
        dfs = export.to_dfs_traversal(t, sim)
        for rep, decode in [
            (bfs, traversals.bfs_traversal_to_edges),
            (dfs, traversals.dfs_traversal_to_edges),
        ]:
            if t.num_nodes == 1:
                continue
            rebuilt = RootedTree.from_edges(decode(rep), root=1)
            assert sorted(rebuilt.subtree_sizes().values()) == sorted(t.subtree_sizes().values())
        # parentheses
        text = export.to_string_of_parentheses(t, sim).text
        rebuilt = parentheses.parentheses_to_tree(text)
        assert sorted(rebuilt.subtree_sizes().values()) == sorted(t.subtree_sizes().values())

    def test_dfs_timestamps_are_preorder(self):
        t = gen.random_attachment_tree(60, seed=2)
        ts = export.dfs_timestamps(t)
        assert sorted(ts.values()) == list(range(t.num_nodes))
        for v in t.nodes():
            if v != t.root:
                assert ts[v] > ts[t.parent[v]]

    def test_export_charges_rounds(self):
        t = gen.path_tree(64)
        sim = make_sim(64)
        export.to_bfs_traversal(t, sim)
        assert sim.stats.charged_rounds > 0
