"""Chaos suite: the exec supervision ladder under deterministic faults.

Every test injects failures at exact ``(worker, call)`` coordinates via
:class:`~repro.mpc.exec.faults.FaultPlan` and asserts the acceptance
contract of the self-healing exec layer:

* the solve *completes* through the ladder (retry within the pool →
  rebuild the pool → warn-once inline fallback), with values, labels and
  every `RoundStats` channel bit-identical to the inline backend;
* hangs are detected by heartbeat silence in seconds (not the 300s call
  deadline), while slow-but-alive workers are never false-killed;
* zero shared-memory segments leak on any retry/teardown path (the
  ``chaos`` marker's conftest fixture re-asserts after every test here);
* the :class:`~repro.mpc.exec.faults.ExecHealth` report records exactly
  which rungs were taken.

Fault coordinates are deterministic because the driver counts the
supervised calls it sends per slot: in a pipeline solve, call 0 of every
slot is the treeops shm ``attach`` and call 1 the first superstep ``op``;
driving the DP engine directly, call 0 is ``tree_state``, call 1
``dp_open`` and call 2 the first ``dp_solve`` batch.
"""

from __future__ import annotations

import json
import time
import warnings

import pytest

from repro.core.pipeline import prepare, solve, solve_on
from repro.dynamic import node_update
from repro.mpc.config import MPCConfig
from repro.mpc.exec import FaultPlan, InjectedFault
from repro.mpc.exec import pool as pool_mod
from repro.mpc.exec.faults import FaultSpec
from repro.mpc.exec.pool import ProcessBackend
from repro.mpc.simulator import MPCSimulator
from repro.mpc.treeops_array import compute_depths_array
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.trees import generators as gen

#: Every stat channel the bit-identical contract covers.
_STAT_FIELDS = (
    "rounds",
    "charged_rounds",
    "rounds_by_label",
    "charged_by_label",
    "charged_words_by_label",
    "charged_words",
)


def _tree(n=150, seed=5):
    return gen.with_random_weights(gen.random_attachment_tree(n, seed=seed), seed=seed)


def _outcome(res):
    return (res.value, res.root_label, dict(res.node_labels), dict(res.edge_labels))


def _stats(sim):
    return tuple(
        dict(v) if isinstance(v := getattr(sim.stats, f), dict) else v for f in _STAT_FIELDS
    )


def _solve_pipeline(tree, **cfg_kw):
    """Full pipeline run; returns (outcome, stats, sim)."""
    cfg = MPCConfig(n=max(4, len(tree.nodes())), **cfg_kw)
    sim = MPCSimulator(cfg)
    res = solve_on(prepare(tree, sim=sim), MaxWeightIndependentSet())
    return _outcome(res), _stats(sim), sim, res


def _solve_dp_on(tree, backend_obj):
    """Prepare inline, then run only the DP phase on ``backend_obj``.

    This pins the per-slot call ordinals of the DP protocol (tree_state=0,
    dp_open=1, first dp_solve=2) independently of how many treeops calls a
    pipeline would make first.
    """
    sim = MPCSimulator(MPCConfig(n=max(4, len(tree.nodes()))))
    prepared = prepare(tree, sim=sim)
    if backend_obj is not None:
        sim._executor = backend_obj
    res = solve_on(prepared, MaxWeightIndependentSet())
    return _outcome(res), _stats(sim)


# --------------------------------------------------------------------------- #
# FaultPlan unit behaviour
# --------------------------------------------------------------------------- #


def test_faultplan_parse_roundtrip():
    spec = "kill@w0:2;hang@*:1:op:duration=3;poison@*:0:attach;raise@update-layer:1"
    plan = FaultPlan.parse(spec)
    assert plan is not None and plan.remaining() == 4
    assert plan.spec == spec
    # to_spec serializes the remaining entries; re-parsing is stable.
    replay = FaultPlan.parse(plan.to_spec())
    assert replay is not None
    assert replay.to_spec() == plan.to_spec()
    # poison is an alias of raise.
    assert "raise@*:0:attach" in plan.to_spec()


def test_faultplan_empty_and_invalid_specs():
    assert FaultPlan.parse("") is None
    assert FaultPlan.parse("  ;  ") is None
    for bad in (
        "explode@w0:1",  # unknown kind
        "kill@w0",  # missing call ordinal
        "kill@w0:x",  # non-integer call
        "kill@w0:-1",  # negative call
        "kill@site-name:0",  # site faults can only raise
        "raise@update-layer:0:op",  # site faults take no command token
        "kill@w0:1:op:frequency=2",  # unknown option
        "kill",  # no '@where:call' at all
    ):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)


def test_faultplan_consume_once_semantics():
    plan = FaultPlan.parse("kill@*:1:op")
    assert plan.take(0, 0, "op") is None  # wrong call
    assert plan.take(1, 1, "attach") is None  # wrong cmd
    directive = plan.take(1, 1, "op")
    assert directive is not None and directive["kind"] == "kill"
    assert plan.take(0, 1, "op") is None  # consumed: fires exactly once
    assert plan.remaining() == 0


def test_faultplan_site_faults_fire_once_at_their_ordinal():
    plan = FaultPlan.parse("poison@update-layer:1")
    plan.check_site("update-layer")  # ordinal 0: no match
    plan.check_site("other-site")  # different site: independent counter
    with pytest.raises(InjectedFault):
        plan.check_site("update-layer")  # ordinal 1: fires
    plan.check_site("update-layer")  # consumed
    assert plan.remaining() == 0


def test_faultplan_seeded_is_deterministic():
    a, b = FaultPlan.seeded(1234, count=3), FaultPlan.seeded(1234, count=3)
    assert a.spec == b.spec and a.remaining() == 3
    # The spec round-trips, so a failing seeded run replays from one string.
    replay = FaultPlan.parse(a.spec)
    assert replay is not None and replay.spec == a.spec


def test_faultspec_validation():
    with pytest.raises(ValueError):
        FaultSpec(kind="kill", call=-1)
    with pytest.raises(ValueError):
        FaultSpec(kind="hang", call=0, site="update-layer")
    assert FaultSpec(kind="poison", call=0).kind == "raise"


def test_config_validates_fault_spec(monkeypatch):
    with pytest.raises(ValueError):
        MPCConfig(n=64, exec_faults="explode@w0:1")
    monkeypatch.setenv("REPRO_EXEC_FAULTS", "kill@w0:1")
    assert MPCConfig(n=64).exec_faults == "kill@w0:1"
    monkeypatch.setenv("REPRO_EXEC_FAULTS", "not-a-spec")
    with pytest.raises(ValueError):
        MPCConfig(n=64)


# --------------------------------------------------------------------------- #
# Pool cache keying / per-pool deadlines
# --------------------------------------------------------------------------- #


def test_pool_cache_keyed_by_every_exec_knob():
    base = ProcessBackend.shared(2)
    assert ProcessBackend.shared(2) is base
    assert ProcessBackend.shared(3) is not base
    assert ProcessBackend.shared(2, call_timeout=123.0) is not base
    assert ProcessBackend.shared(2, retries=0) is not base
    assert ProcessBackend.shared(2, heartbeat=0.1) is not base
    faulted = ProcessBackend.shared(2, faults="kill@w0:1")
    assert faulted is not base
    assert faulted.fault_plan is not None and faulted.fault_plan.remaining() == 1
    # Cache lookups never build worker processes by themselves (checked on a
    # freshly-keyed pool: `base` may be prebuilt by earlier tests in the run).
    fresh = ProcessBackend.shared(2, backoff=0.123)
    assert ProcessBackend.shared(2, backoff=0.123) is fresh
    assert not fresh._workers


def test_call_timeout_is_read_per_pool_not_at_import(monkeypatch):
    monkeypatch.setenv("REPRO_EXEC_TIMEOUT", "17.5")
    assert ProcessBackend(2).call_timeout == 17.5
    monkeypatch.setenv("REPRO_EXEC_TIMEOUT", "42")
    assert ProcessBackend(2).call_timeout == 42.0  # no import-time freeze
    assert ProcessBackend(2, call_timeout=9.0).call_timeout == 9.0  # explicit wins
    cfg = MPCConfig(n=64, exec_call_timeout=11.0)
    assert cfg.exec_call_timeout == 11.0


# --------------------------------------------------------------------------- #
# Fault classes end-to-end: the solve completes, bit-identical to inline
# --------------------------------------------------------------------------- #


@pytest.mark.chaos
def test_worker_sigkill_mid_superstep_heals_bit_identical():
    """Fault class 1: SIGKILL mid-superstep → rebuild rung, identical run."""
    ref_out, ref_stats, _sim, _res = _solve_pipeline(_tree(), exec_backend="inline")
    out, stats, sim, res = _solve_pipeline(
        _tree(),
        exec_backend="process",
        exec_workers=2,
        exec_backoff=0.01,
        exec_faults="kill@*:1:op",
    )
    assert out == ref_out
    for field, a, b in zip(_STAT_FIELDS, ref_stats, stats):
        assert a == b, f"stats field {field} diverged under injected kill"
    health = sim.executor.health
    assert health.worker_deaths >= 1
    assert health.rebuilds >= 1
    assert health.inline_fallbacks == 0
    # The report also rides on the pipeline result.
    assert res.exec_health is not None
    assert res.exec_health["worker_deaths"] == health.worker_deaths
    sim.executor.close()


@pytest.mark.chaos
def test_hung_worker_detected_by_heartbeat_not_deadline():
    """Fault class 2: a silent worker is declared hung after ~12 heartbeat
    intervals and healed — nowhere near the 300s call deadline or the 30s
    injected sleep."""
    ref_out, ref_stats, _sim, _res = _solve_pipeline(_tree(seed=6), exec_backend="inline")
    t0 = time.monotonic()
    out, stats, sim, _res = _solve_pipeline(
        _tree(seed=6),
        exec_backend="process",
        exec_workers=2,
        exec_backoff=0.01,
        exec_heartbeat=0.1,
        exec_call_timeout=300.0,
        exec_faults="hang@w0:1:op:duration=30",
    )
    elapsed = time.monotonic() - t0
    assert out == ref_out and stats == ref_stats
    assert elapsed < 20.0, f"hang detection took {elapsed:.1f}s — heartbeats not working"
    health = sim.executor.health
    assert health.worker_hangs >= 1
    assert health.rebuilds >= 1
    assert health.inline_fallbacks == 0
    sim.executor.close()


@pytest.mark.chaos
def test_poisoned_dp_batch_retries_within_pool():
    """Fault class 3: a poisoned DP batch raises worker-side; the retry
    stays on rung 1 — same pool, no rebuild — and matches inline exactly."""
    ref = _solve_dp_on(_tree(seed=7), None)
    backend = ProcessBackend(2, backoff=0.01, fault_plan=FaultPlan.parse("poison@w0:2:dp_solve"))
    try:
        got = _solve_dp_on(_tree(seed=7), backend)
        assert got == ref
        assert backend.health.worker_errors == 1
        assert backend.health.retries == 1
        assert backend.health.rebuilds == 0  # rung 1 sufficed: pool intact
        assert backend.health.inline_fallbacks == 0
        assert backend.fault_plan is not None and backend.fault_plan.remaining() == 0
    finally:
        backend.close()


@pytest.mark.chaos
def test_shm_attach_failure_heals():
    """Fault class 4: a failed shm attach is retried like any worker error."""
    ref_out, ref_stats, _sim, _res = _solve_pipeline(_tree(seed=8), exec_backend="inline")
    out, stats, sim, _res = _solve_pipeline(
        _tree(seed=8),
        exec_backend="process",
        exec_workers=2,
        exec_backoff=0.01,
        exec_faults="raise@*:0:attach",
    )
    assert out == ref_out and stats == ref_stats
    health = sim.executor.health
    assert health.worker_errors >= 1
    assert health.inline_fallbacks == 0
    sim.executor.close()


@pytest.mark.chaos
def test_dropped_reply_surfaces_as_hang_and_heals():
    """A computed-but-lost reply is indistinguishable from a hang; the
    re-dispatch after the rebuild re-runs the op over the same shared
    arrays — idempotent by construction, so still bit-identical."""
    ref_out, ref_stats, _sim, _res = _solve_pipeline(_tree(seed=9), exec_backend="inline")
    out, stats, sim, _res = _solve_pipeline(
        _tree(seed=9),
        exec_backend="process",
        exec_workers=2,
        exec_backoff=0.01,
        exec_heartbeat=0.1,
        exec_faults="drop@w0:1:op",
    )
    assert out == ref_out and stats == ref_stats
    health = sim.executor.health
    assert health.worker_hangs >= 1
    assert health.rebuilds >= 1
    sim.executor.close()


@pytest.mark.chaos
def test_slow_worker_is_not_false_killed():
    """The anti-flakiness half of liveness: a worker sleeping well past the
    hang window but heartbeating through it must complete normally."""
    ref_out, ref_stats, _sim, _res = _solve_pipeline(_tree(seed=10), exec_backend="inline")
    out, stats, sim, _res = _solve_pipeline(
        _tree(seed=10),
        exec_backend="process",
        exec_workers=2,
        exec_heartbeat=0.1,  # hang window = 1.2s, well under the delay
        exec_faults="delay@w0:1:op:duration=2.5",
    )
    assert out == ref_out and stats == ref_stats
    health = sim.executor.health
    assert health.worker_hangs == 0
    assert health.worker_deaths == 0
    assert health.retries == 0
    assert health.events == []
    sim.executor.close()


@pytest.mark.chaos
def test_ladder_exhaustion_degrades_inline_with_one_warning(monkeypatch):
    """retries=0 exhausts the ladder on the first death: the session warns
    once, degrades inline, and still produces the identical result."""
    monkeypatch.setattr(pool_mod, "_DEGRADE_WARNED", False)
    ref_out, ref_stats, _sim, _res = _solve_pipeline(_tree(seed=11), exec_backend="inline")
    with pytest.warns(RuntimeWarning, match="supervision exhausted"):
        out, stats, sim, res = _solve_pipeline(
            _tree(seed=11),
            exec_backend="process",
            exec_workers=2,
            exec_retries=0,
            exec_faults="kill@*:1:op",
        )
    assert out == ref_out and stats == ref_stats
    health = sim.executor.health
    assert health.worker_deaths == 1
    assert health.retries == 0
    assert health.inline_fallbacks >= 1
    assert res.exec_health is not None
    assert res.exec_health["inline_fallbacks"] == health.inline_fallbacks
    # Warn-once: a second degradation in the same process stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        pool_mod._warn_inline_fallback("again", RuntimeError("x"))
    sim.executor.close()


@pytest.mark.chaos
def test_seeded_fault_plan_replays_identically():
    """Same seed, same plan, same healed result — the CI chaos matrix
    relies on seeded runs being reproducible from the seed alone."""
    runs = []
    for _ in range(2):
        plan = FaultPlan.seeded(42, count=2, kinds=("kill", "raise"), max_call=4)
        backend = ProcessBackend(2, backoff=0.01, fault_plan=plan)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                runs.append(_solve_dp_on(_tree(seed=12), backend) + (plan.remaining(),))
        finally:
            backend.close()
    assert runs[0] == runs[1]
    assert runs[0][:2] == _solve_dp_on(_tree(seed=12), None)


# --------------------------------------------------------------------------- #
# ExecHealth surfacing
# --------------------------------------------------------------------------- #


@pytest.mark.chaos
def test_exec_health_report_counts_and_json_artifact(tmp_path, monkeypatch):
    """The health report is exact (not >=) for a single planned fault, is
    surfaced via PreparedTree.exec_health(), and is dumped as JSON on close
    when REPRO_EXEC_HEALTH_DIR is set."""
    monkeypatch.setenv("REPRO_EXEC_HEALTH_DIR", str(tmp_path))
    backend = ProcessBackend(2, backoff=0.01, fault_plan=FaultPlan.parse("kill@w0:1:op"))
    try:
        sim = MPCSimulator(MPCConfig(n=128))
        sim._executor = backend
        tree = gen.random_attachment_tree(128, seed=3)
        parent = {v: tree.parent[v] for v in tree.nodes() if v != tree.root}
        parent[tree.root] = tree.root
        depths = compute_depths_array(sim, dict(parent), tree.root)
        assert depths == compute_depths_array(
            MPCSimulator(MPCConfig(n=128)), dict(parent), tree.root
        )
        assert backend.health.worker_deaths == 1
        assert backend.health.retries == 1
        assert backend.health.rebuilds == 1
        assert backend.health.inline_fallbacks == 0
        kinds = [e["event"] for e in backend.health.events]
        assert kinds == ["failure", "retry", "rebuild"]
        expected = backend.health.as_dict()
    finally:
        backend.close()
    reports = list(tmp_path.glob("exec-health-*.json"))
    assert len(reports) == 1
    assert json.loads(reports[0].read_text()) == expected


def test_exec_health_reports_never_collide(tmp_path, monkeypatch):
    """Health dumps sharing one directory never overwrite each other.

    Regression test: several pipelines in one process used to be the only
    collision-safe case (a per-process sequence number); a *restarted*
    server process whose pid the OS reused restarts the sequence at 0 and
    silently clobbered the previous run's report.  The shared dump helper
    (``repro.obs.dump.dump_file``) always starts the sequence at 0 and
    advances past any existing file via exclusive create, so every dump —
    same process or a reincarnated pid — lands on a fresh name.
    """
    monkeypatch.setenv("REPRO_EXEC_HEALTH_DIR", str(tmp_path))

    def dump(marker):
        backend = ProcessBackend(1)
        backend._ever_built = True  # dump without spawning real workers
        backend.health.events.append({"event": "marker", "marker": marker})
        backend._write_health_report()

    dump("first")
    dump("second")  # second pipeline, same process
    # A restarted server whose pid the OS reused behaves identically: the
    # sequence restarts at 0 and exclusive create walks it past survivors.
    dump("third")

    reports = list(tmp_path.glob("exec-health-*.json"))
    assert len(reports) == 3
    markers = {json.loads(p.read_text())["events"][-1]["marker"] for p in reports}
    assert markers == {"first", "second", "third"}


def test_prepared_tree_exec_health_is_none_inline():
    tree = _tree(n=60, seed=13)
    prepared = prepare(tree, sim=MPCSimulator(MPCConfig(n=60, exec_backend="inline")))
    assert prepared.exec_health() is None
    res = solve_on(prepared, MaxWeightIndependentSet())
    assert res.exec_health is None


# --------------------------------------------------------------------------- #
# Incremental solver: pending-dirty healing under injected faults
# --------------------------------------------------------------------------- #


@pytest.mark.chaos
@pytest.mark.parametrize("exec_backend", ["inline", "process"])
def test_incremental_poisoned_update_batch_heals(exec_backend):
    """An update pass poisoned mid-pass (after payloads were written, after
    some chain summaries were re-solved) must refuse to serve stale state
    and heal on the next batch — differentially checked against a
    from-scratch solve, under both exec backends."""
    tree = _tree(n=120, seed=21)
    cfg = MPCConfig(n=120, exec_backend=exec_backend, exec_workers=2, exec_backoff=0.01)
    prepared = prepare(tree, sim=MPCSimulator(cfg))
    plan = FaultPlan.parse("poison@update-layer:1")
    inc = prepared.incremental(MaxWeightIndependentSet(), fault_plan=plan)
    nodes = tree.nodes()

    # nodes[5]'s dirty chain spans two layers, so the fault fires at the
    # *second* bottom-up layer of this pass: the payload write and the
    # first layer's summaries already landed.
    with pytest.raises(InjectedFault):
        inc.apply_updates([node_update(nodes[5], 9999.0)])
    with pytest.raises(RuntimeError, match="stale"):
        inc.as_pipeline_result()

    # The next batch folds the pending chains back in (pruning disabled
    # while healing) and restores consistency.
    inc.apply_updates([node_update(nodes[3], 1.25)])
    assert plan.remaining() == 0
    ref = solve(tree, MaxWeightIndependentSet())
    got = inc.as_pipeline_result()
    assert (got.value, got.node_labels, got.edge_labels) == (
        ref.value,
        ref.node_labels,
        ref.edge_labels,
    )

    # Subsequent updates keep matching from-scratch solves.
    inc.apply_updates([node_update(nodes[8], 0.125)])
    ref2 = solve(tree, MaxWeightIndependentSet())
    assert inc.as_pipeline_result().value == ref2.value
    if exec_backend == "process":
        prepared.sim.executor.close()


@pytest.mark.chaos
def test_incremental_repeated_poison_heals_every_round():
    """Three consecutive poisoned batches, each at a different layer
    ordinal: every round refuses stale state, every heal converges."""
    tree = _tree(n=100, seed=22)
    prepared = prepare(tree, sim=MPCSimulator(MPCConfig(n=100)))
    plan = FaultPlan.parse(
        "poison@update-layer:0;poison@update-layer:3;poison@update-layer:7"
    )
    inc = prepared.incremental(MaxWeightIndependentSet(), fault_plan=plan)
    nodes = tree.nodes()
    for round_no, node in enumerate(nodes[:6]):
        try:
            inc.apply_updates([node_update(node, float(round_no) + 0.5)])
        except InjectedFault:
            with pytest.raises(RuntimeError, match="stale"):
                inc.solve_result()
            continue  # the next round's batch heals the pending chains
        ref = solve(tree, MaxWeightIndependentSet())
        assert inc.as_pipeline_result().value == ref.value
    # Drain any leftover pending state and verify final convergence.
    inc.refresh()
    ref = solve(tree, MaxWeightIndependentSet())
    got = inc.as_pipeline_result()
    assert (got.value, got.edge_labels) == (ref.value, ref.edge_labels)
