"""Tests of the tree data structure, generators and property helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import generators as gen
from repro.trees.properties import diameter, height, max_degree, subtree_aggregate, tree_summary
from repro.trees.tree import RootedTree
from repro.trees.validation import (
    assert_same_tree,
    check_rooted_tree,
    is_connected_tree_edge_list,
)

from tests.conftest import FAMILIES, FAMILY_IDS


class TestRootedTree:
    def test_from_edges_infers_root(self):
        t = RootedTree.from_edges([(1, 4), (2, 3), (5, 4), (4, 3)])
        assert t.root == 3
        assert t.num_nodes == 5
        assert t.parent[1] == 4

    def test_from_edges_rejects_two_parents(self):
        with pytest.raises(ValueError):
            RootedTree.from_edges([(1, 2), (1, 3)], root=2)

    def test_from_parent_map_rejects_cycle(self):
        with pytest.raises(ValueError):
            RootedTree.from_parent_map({0: 0, 1: 2, 2: 1})

    def test_children_and_leaves(self):
        t = gen.star_tree(10)
        assert sorted(t.children(0)) == list(range(1, 10))
        assert sorted(t.leaves()) == list(range(1, 10))
        assert t.degree(0) == 9
        assert t.degree(3) == 1

    def test_orders_cover_all_nodes(self):
        t = gen.random_attachment_tree(200, seed=5)
        assert sorted(t.bfs_order()) == sorted(t.nodes())
        assert sorted(t.dfs_order()) == sorted(t.nodes())
        assert sorted(t.postorder()) == sorted(t.nodes())
        # parents precede children in BFS order
        pos = {v: i for i, v in enumerate(t.bfs_order())}
        assert all(pos[t.parent[v]] < pos[v] for v in t.nodes() if v != t.root)
        # children precede parents in postorder
        pos = {v: i for i, v in enumerate(t.postorder())}
        assert all(pos[t.parent[v]] > pos[v] for v in t.nodes() if v != t.root)

    def test_depths_and_subtree_sizes_on_path(self):
        t = gen.path_tree(50)
        depths = t.depths()
        sizes = t.subtree_sizes()
        assert depths[49] == 49
        assert sizes[0] == 50
        assert sizes[49] == 1

    def test_deep_path_does_not_hit_recursion_limit(self):
        t = gen.path_tree(5000)
        assert t.subtree_sizes()[0] == 5000
        assert max(t.depths().values()) == 4999

    def test_relabeled_preserves_shape(self):
        t = gen.random_attachment_tree(60, seed=9)
        r, mapping = t.relabeled()
        assert r.num_nodes == t.num_nodes
        assert r.root == 0
        assert max(r.depths().values()) == max(t.depths().values())

    def test_with_node_data_does_not_mutate_original(self):
        t = gen.path_tree(5)
        t2 = t.with_node_data({0: 1.5})
        assert t.node_data == {}
        assert t2.node_data[0] == 1.5


class TestGenerators:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    @pytest.mark.parametrize("n", [1, 2, 7, 64, 321])
    def test_families_produce_valid_trees(self, family, builder, n):
        t = builder(n)
        assert t.num_nodes == n
        check_rooted_tree(t)

    def test_expected_diameters(self):
        assert diameter(gen.path_tree(100)) == 99
        assert diameter(gen.star_tree(100)) == 2
        assert diameter(gen.broom_tree(100, handle_length=4)) == 4
        assert diameter(gen.two_level_tree(100)) == 4

    def test_balanced_tree_height_logarithmic(self):
        t = gen.balanced_kary_tree(1023, k=2)
        assert height(t) == 9

    def test_random_weights_attached_to_all_nodes(self):
        t = gen.with_random_weights(gen.path_tree(30), seed=1)
        assert len(t.node_data) == 30
        assert all(isinstance(w, float) for w in t.node_data.values())

    def test_leaf_values_only_on_leaves(self):
        t = gen.with_random_leaf_values(gen.balanced_kary_tree(31, 2), seed=1)
        assert set(t.node_data) == set(t.leaves())

    def test_invalid_sizes_rejected(self):
        for builder in (gen.path_tree, gen.star_tree, gen.balanced_kary_tree):
            with pytest.raises(ValueError):
                builder(0)


class TestProperties:
    def test_diameter_matches_bruteforce_on_random_trees(self):
        for seed in range(5):
            t = gen.random_attachment_tree(40, seed=seed)
            # brute force: BFS from every node
            adj = {v: list(t.children(v)) for v in t.nodes()}
            for v in t.nodes():
                if v != t.root:
                    adj[v].append(t.parent[v])
            best = 0
            for s in t.nodes():
                dist = {s: 0}
                frontier = [s]
                while frontier:
                    nxt = []
                    for u in frontier:
                        for w in adj[u]:
                            if w not in dist:
                                dist[w] = dist[u] + 1
                                nxt.append(w)
                    frontier = nxt
                best = max(best, max(dist.values()))
            assert diameter(t) == best

    def test_subtree_aggregate_ops(self):
        t = gen.path_tree(5).with_node_data({i: float(i) for i in range(5)})
        sums = subtree_aggregate(t, "sum")
        assert sums[0] == 10.0
        assert sums[4] == 4.0
        assert subtree_aggregate(t, "max")[0] == 4.0
        assert subtree_aggregate(t, "min")[2] == 2.0
        with pytest.raises(ValueError):
            subtree_aggregate(t, "median")

    def test_tree_summary_keys(self):
        s = tree_summary(gen.random_attachment_tree(64, seed=0))
        assert set(s) == {"n", "height", "diameter", "max_degree", "leaves"}


class TestValidation:
    def test_connected_tree_edge_list(self):
        assert is_connected_tree_edge_list([(0, 1), (1, 2)])
        assert not is_connected_tree_edge_list([(0, 1), (2, 3)])
        assert not is_connected_tree_edge_list([(0, 1), (1, 2), (2, 0)])
        assert not is_connected_tree_edge_list([])
        assert not is_connected_tree_edge_list([(0, 0)])

    def test_assert_same_tree_detects_differences(self):
        a = gen.path_tree(5)
        b = gen.star_tree(5)
        with pytest.raises(AssertionError):
            assert_same_tree(a, b)


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=150))
@settings(max_examples=30, deadline=None)
def test_random_parent_maps_are_valid_and_consistent(raw):
    n = len(raw) + 1
    parent = {0: 0}
    for v in range(1, n):
        parent[v] = raw[v - 1] % v
    t = RootedTree.from_parent_map(parent, root=0)
    check_rooted_tree(t)
    sizes = t.subtree_sizes()
    assert sizes[0] == n
    depths = t.depths()
    assert height(t) == max(depths.values())
    assert diameter(t) <= 2 * height(t)
    assert max_degree(t) >= 1
