"""Framework vs. sequential vs. brute force for the optimisation problems."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import solve
from repro.dp.sequential import solve_sequential
from repro.problems.max_weight_independent_set import (
    MaxWeightIndependentSet,
    independent_set_weight,
    is_independent_set,
    sequential_max_weight_independent_set,
)
from repro.problems.max_weight_matching import (
    MaxWeightMatching,
    is_matching,
    matching_weight,
    sequential_max_weight_matching,
)
from repro.problems.min_weight_dominating_set import (
    MinWeightDominatingSet,
    is_dominating_set,
    sequential_min_weight_dominating_set,
)
from repro.problems.min_weight_vertex_cover import (
    MinWeightVertexCover,
    is_vertex_cover,
    sequential_min_weight_vertex_cover,
)
from repro.trees import generators as gen

from tests.conftest import FAMILIES, FAMILY_IDS

PROBLEMS = [
    ("max-is", MaxWeightIndependentSet, sequential_max_weight_independent_set),
    ("min-vc", MinWeightVertexCover, sequential_min_weight_vertex_cover),
    ("min-ds", MinWeightDominatingSet, sequential_min_weight_dominating_set),
    ("max-matching", MaxWeightMatching, sequential_max_weight_matching),
]


def weighted(builder, n, seed=13):
    return gen.with_random_weights(builder(n), seed=seed)


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize("pname,problem_cls,reference", PROBLEMS, ids=[p[0] for p in PROBLEMS])
def test_framework_matches_sequential_reference(family, builder, pname, problem_cls, reference):
    tree = weighted(builder, 180)
    res = solve(tree, problem_cls())
    assert res.value == pytest.approx(reference(tree), rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 30, 90])
@pytest.mark.parametrize("pname,problem_cls,reference", PROBLEMS, ids=[p[0] for p in PROBLEMS])
def test_small_and_edge_case_sizes(n, pname, problem_cls, reference):
    tree = weighted(gen.random_attachment_tree, n, seed=n)
    res = solve(tree, problem_cls())
    assert res.value == pytest.approx(reference(tree), rel=1e-9, abs=1e-9)


class TestSolutionStructure:
    def test_max_is_solution_is_feasible_and_optimal(self):
        tree = weighted(gen.random_attachment_tree, 250, seed=3)
        res = solve(tree, MaxWeightIndependentSet())
        chosen = res.output["independent_set"]
        assert is_independent_set(tree, chosen)
        assert independent_set_weight(tree, chosen) == pytest.approx(res.value)

    def test_vertex_cover_solution_is_feasible_and_optimal(self):
        tree = weighted(gen.caterpillar_tree, 200, seed=5)
        res = solve(tree, MinWeightVertexCover())
        chosen = res.output["vertex_cover"]
        assert is_vertex_cover(tree, chosen)
        assert sum(tree.weight(v) for v in chosen) == pytest.approx(res.value)

    def test_dominating_set_solution_is_feasible_and_optimal(self):
        tree = weighted(gen.spider_tree, 220, seed=7)
        res = solve(tree, MinWeightDominatingSet())
        chosen = res.output["dominating_set"]
        assert is_dominating_set(tree, chosen)
        assert sum(tree.weight(v) for v in chosen) == pytest.approx(res.value)

    def test_matching_solution_is_feasible_and_optimal(self):
        tree = gen.random_attachment_tree(200, seed=2)
        tree.edge_data = {e: round(1 + (hash(e) % 100) / 10.0, 2) for e in tree.edges()}
        res = solve(tree, MaxWeightMatching())
        edges = res.output["matching"]
        assert is_matching(edges)
        assert matching_weight(tree, edges) == pytest.approx(res.value)
        assert res.value == pytest.approx(sequential_max_weight_matching(tree))

    def test_high_degree_star_with_degree_reduction(self):
        tree = weighted(gen.star_tree, 400, seed=1)
        res = solve(tree, MaxWeightIndependentSet())
        assert res.value == pytest.approx(sequential_max_weight_independent_set(tree))
        chosen = res.output["independent_set"]
        assert is_independent_set(tree, chosen)

    def test_two_level_high_degree_tree(self):
        tree = weighted(gen.two_level_tree, 500, seed=4)
        for problem_cls, reference in [
            (MaxWeightIndependentSet, sequential_max_weight_independent_set),
            (MinWeightVertexCover, sequential_min_weight_vertex_cover),
            (MinWeightDominatingSet, sequential_min_weight_dominating_set),
        ]:
            res = solve(tree, problem_cls())
            assert res.value == pytest.approx(reference(tree), rel=1e-9)


# --------------------------------------------------------------------------- #
# Brute force oracle on tiny random weighted trees (hypothesis)
# --------------------------------------------------------------------------- #


def brute_force_optimum(tree, kind):
    nodes = tree.nodes()
    best = None
    for mask in itertools.product([False, True], repeat=len(nodes)):
        chosen = {v for v, m in zip(nodes, mask) if m}
        w = sum(tree.weight(v) for v in chosen)
        if kind == "is":
            ok = all(not (c in chosen and p in chosen) for c, p in tree.edges())
            if ok and (best is None or w > best):
                best = w
        elif kind == "vc":
            ok = all(c in chosen or p in chosen for c, p in tree.edges())
            if ok and (best is None or w < best):
                best = w
        elif kind == "ds":
            ok = True
            cm = tree.children_map()
            for v in nodes:
                if v in chosen:
                    continue
                neigh = list(cm[v]) + ([tree.parent[v]] if v != tree.root else [])
                if not any(u in chosen for u in neigh):
                    ok = False
                    break
            if ok and (best is None or w < best):
                best = w
    return best


@given(
    st.integers(1, 9),
    st.integers(0, 1000),
    st.sampled_from(["is", "vc", "ds"]),
)
@settings(max_examples=40, deadline=None)
def test_against_exponential_brute_force(n, seed, kind):
    tree = gen.with_random_weights(gen.random_attachment_tree(n, seed=seed), seed=seed)
    problem = {
        "is": MaxWeightIndependentSet,
        "vc": MinWeightVertexCover,
        "ds": MinWeightDominatingSet,
    }[kind]()
    res = solve(tree, problem)
    assert res.value == pytest.approx(brute_force_optimum(tree, kind), rel=1e-9, abs=1e-9)


@given(st.integers(1, 10), st.integers(0, 500))
@settings(max_examples=30, deadline=None)
def test_sequential_solver_agrees_with_framework(n, seed):
    """The generic sequential solver and the cluster engine share problem
    definitions but differ in combination logic; they must agree exactly."""
    tree = gen.with_random_weights(gen.random_attachment_tree(n, seed=seed), seed=seed + 1)
    problem = MaxWeightIndependentSet()
    assert solve(tree, problem).value == pytest.approx(
        solve_sequential(problem, tree).value
    )
