"""Tests of the distributed-array primitives (sort, group, join, prefix sums)."""

from hypothesis import given, settings, strategies as st

from repro.mpc.config import MPCConfig
from repro.mpc.darray import DistributedArray
from repro.mpc.simulator import MPCSimulator


def make_array(records, n=None):
    sim = MPCSimulator(MPCConfig(n=max(4, n or len(records) or 4)))
    return sim, DistributedArray.from_records(sim, records)


class TestLocalOps:
    def test_map_filter_flatmap_cost_no_rounds(self):
        sim, arr = make_array(list(range(50)))
        before = sim.stats.rounds
        out = arr.map(lambda x: x + 1).filter(lambda x: x % 2 == 0).flat_map(lambda x: [x, x])
        assert sim.stats.rounds == before
        assert sorted(out.collect()) == sorted(
            [x + 1 for x in range(50) if (x + 1) % 2 == 0] * 2
        )

    def test_len_and_collect(self):
        _, arr = make_array(list(range(17)))
        assert len(arr) == 17
        assert sorted(arr.collect()) == list(range(17))


class TestSort:
    def test_sort_costs_constant_rounds(self):
        sim, arr = make_array(list(range(200, 0, -1)))
        before = sim.stats.rounds
        out = arr.sort_by(lambda x: x)
        assert out.collect() == sorted(range(1, 201))
        assert sim.stats.rounds - before == 4

    def test_sort_with_duplicate_keys(self):
        sim, arr = make_array([(i % 5, i) for i in range(100)])
        out = arr.sort_by(lambda r: r[0]).collect()
        assert [r[0] for r in out] == sorted(i % 5 for i in range(100))

    def test_sort_empty(self):
        sim, arr = make_array([])
        assert arr.sort_by(lambda x: x).collect() == []

    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    @settings(max_examples=25, deadline=None)
    def test_sort_matches_python_sorted(self, xs):
        _, arr = make_array(xs, n=max(4, len(xs)))
        assert arr.sort_by(lambda x: x).collect() == sorted(xs)


class TestGroupAndJoin:
    def test_group_by_collects_whole_groups(self):
        _, arr = make_array([(i % 7, i) for i in range(140)])
        groups = dict(arr.group_by(lambda r: r[0]).collect())
        assert set(groups) == set(range(7))
        for k, members in groups.items():
            assert sorted(m[1] for m in members) == [i for i in range(140) if i % 7 == k]

    def test_join_inner_semantics(self):
        sim = MPCSimulator(MPCConfig(n=64))
        left = DistributedArray.from_records(sim, [("a", 1), ("b", 2), ("c", 3)])
        right = DistributedArray.from_records(sim, [("a", 10), ("a", 11), ("c", 30), ("d", 40)])
        joined = left.join(right, key_self=lambda r: r[0], key_other=lambda r: r[0]).collect()
        pairs = sorted((k, l[1], r[1]) for k, l, r in joined)
        assert pairs == [("a", 1, 10), ("a", 1, 11), ("c", 3, 30)]

    @given(
        st.lists(st.tuples(st.integers(0, 20), st.integers()), max_size=80),
        st.lists(st.tuples(st.integers(0, 20), st.integers()), max_size=80),
    )
    @settings(max_examples=20, deadline=None)
    def test_join_matches_nested_loop(self, left_recs, right_recs):
        sim = MPCSimulator(MPCConfig(n=max(4, len(left_recs) + len(right_recs))))
        left = DistributedArray.from_records(sim, left_recs)
        right = DistributedArray.from_records(sim, right_recs)
        joined = left.join(right, key_self=lambda r: r[0], key_other=lambda r: r[0]).collect()
        expected = sorted(
            (l[0], l, r) for l in left_recs for r in right_recs if l[0] == r[0]
        )
        assert sorted(joined) == expected


class TestPrefixAndReduce:
    def test_prefix_sum_exclusive(self):
        _, arr = make_array([1] * 25)
        out = arr.prefix_sum(lambda r: r)
        prefixes = [p for _, p in out.collect()]
        assert prefixes == list(range(25))

    def test_prefix_sum_general_values(self):
        values = [3, -1, 4, 1, -5, 9, 2, 6]
        _, arr = make_array(values)
        out = arr.prefix_sum(lambda r: r).collect()
        running = 0
        for rec, prefix in out:
            assert prefix == running
            running += rec

    def test_reduce_and_count(self):
        sim, arr = make_array(list(range(101)))
        assert arr.count() == 101
        assert arr.reduce(lambda r: r, lambda a, b: a + b, 0) == sum(range(101))

    def test_rebalance_preserves_content(self):
        sim = MPCSimulator(MPCConfig(n=64))
        parts = [[i for i in range(60)]] + [[] for _ in range(sim.num_machines - 1)]
        arr = DistributedArray(sim, parts)
        out = arr.rebalance()
        assert sorted(out.collect()) == list(range(60))
        sizes = [len(p) for p in out.parts]
        assert max(sizes) - min(s for s in sizes if s > 0 or True) <= max(sizes)
        assert max(sizes) <= (60 // sim.num_machines) + sim.num_machines
