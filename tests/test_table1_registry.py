"""Every Table-1 registry entry solves correctly through the full pipeline."""

import pytest

from repro.core.pipeline import prepare, solve, solve_on
from repro.dp.local_solver import backend_ineligibility
from repro.dp.problem import FiniteStateDP
from repro.problems.registry import table1_entries
from repro.problems.xml_validation import XMLStructureValidation

ENTRIES = [e for e in table1_entries() if "Bayesian" not in e.name]

#: Entries eligible for the vectorized backend (finite-state problems with a
#: declared accumulator space and a dense-kernel semiring).
KERNEL_ENTRIES = [
    e
    for e in ENTRIES
    if isinstance(e.make_problem(), FiniteStateDP)
    and backend_ineligibility(e.make_problem()) is None
]


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_registry_entry_end_to_end(entry):
    tree = entry.make_tree(120, 5)
    problem = entry.make_problem()
    if isinstance(problem, XMLStructureValidation):
        problem = problem.bind(tree)
    result = solve(tree, problem, degree_reduction=entry.degree_reduction)
    reference = entry.reference(tree)
    assert entry.compare(result, reference, tree), (
        f"{entry.name}: framework value {result.value!r} vs reference {reference!r}"
    )


@pytest.mark.parametrize("n,seed", [(60, 3), (150, 11)], ids=["n60", "n150"])
@pytest.mark.parametrize("entry", KERNEL_ENTRIES, ids=[e.name for e in KERNEL_ENTRIES])
def test_numpy_backend_bit_identical_to_python(entry, n, seed):
    """Dense kernels reproduce the scalar path exactly: values AND labels.

    The two backends share canonical (state-id) tie-breaking and associate
    float operations identically, so the comparison is ``==``, not approx.
    """
    tree = entry.make_tree(n, seed)
    prepared = prepare(tree, degree_reduction=entry.degree_reduction)

    def make():
        p = entry.make_problem()
        return p.bind(tree) if isinstance(p, XMLStructureValidation) else p

    res_py = solve_on(prepared, make(), backend="python")
    res_np = solve_on(prepared, make(), backend="numpy")
    assert res_py.value == res_np.value
    assert res_py.root_label == res_np.root_label
    assert res_py.edge_labels == res_np.edge_labels
    assert res_py.node_labels == res_np.node_labels


def test_kernel_eligibility_covers_the_finite_state_rows():
    """Every finite-state Table-1 problem except edge coloring is vectorized.

    Edge coloring's accumulator (the set of used colours) is exponential in
    k, so it intentionally stays on the scalar path.
    """
    names = {e.name for e in KERNEL_ENTRIES}
    finite_state = {
        e.name for e in ENTRIES if isinstance(e.make_problem(), FiniteStateDP)
    }
    assert finite_state - names == {"Edge coloring"}
    assert len(names) >= 9


def test_registry_covers_the_papers_table():
    names = {e.name for e in table1_entries()}
    # The paper's Table 1 lists 16 rows; all of them must be present.
    assert len(names) == 16
    assert {"Maximum weight independent set", "Tree median problem", "Vertex coloring"} <= names


def test_prior_work_column_matches_the_paper():
    by_name = {e.name: e for e in table1_entries()}
    assert by_name["Vertex coloring"].prior_work
    assert by_name["Edge coloring"].prior_work
    assert by_name["Maximal independent set"].prior_work
    lcl_only = [e for e in table1_entries() if e.prior_work]
    assert len(lcl_only) == 3  # everything else is new in this work
    assert all(e.this_work for e in table1_entries())
