"""Every Table-1 registry entry solves correctly through the full pipeline."""

import pytest

from repro.core.pipeline import solve
from repro.problems.registry import table1_entries
from repro.problems.xml_validation import XMLStructureValidation

ENTRIES = [e for e in table1_entries() if "Bayesian" not in e.name]


@pytest.mark.parametrize("entry", ENTRIES, ids=[e.name for e in ENTRIES])
def test_registry_entry_end_to_end(entry):
    tree = entry.make_tree(120, 5)
    problem = entry.make_problem()
    if isinstance(problem, XMLStructureValidation):
        problem = problem.bind(tree)
    result = solve(tree, problem, degree_reduction=entry.degree_reduction)
    reference = entry.reference(tree)
    assert entry.compare(result, reference, tree), (
        f"{entry.name}: framework value {result.value!r} vs reference {reference!r}"
    )


def test_registry_covers_the_papers_table():
    names = {e.name for e in table1_entries()}
    # The paper's Table 1 lists 16 rows; all of them must be present.
    assert len(names) == 16
    assert {"Maximum weight independent set", "Tree median problem", "Vertex coloring"} <= names


def test_prior_work_column_matches_the_paper():
    by_name = {e.name: e for e in table1_entries()}
    assert by_name["Vertex coloring"].prior_work
    assert by_name["Edge coloring"].prior_work
    assert by_name["Maximal independent set"].prior_work
    lcl_only = [e for e in table1_entries() if e.prior_work]
    assert len(lcl_only) == 3  # everything else is new in this work
    assert all(e.this_work for e in table1_entries())
