"""Accumulation problems: subtree aggregates, depths, expressions, XML, tree median."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import solve
from repro.problems.expression_evaluation import (
    ArithmeticExpressionEvaluation,
    evaluate_expression_tree,
)
from repro.problems.subtree_aggregation import (
    NodeDepth,
    RootToNodeSum,
    SubtreeAggregate,
    SubtreeSize,
)
from repro.problems.tree_median import TreeMedian, lower_median, sequential_tree_median
from repro.problems.xml_validation import XMLSchema, XMLStructureValidation, validate_xml_tree
from repro.trees import generators as gen
from repro.trees.properties import subtree_aggregate

from tests.conftest import FAMILIES, FAMILY_IDS


class TestSubtreeAggregates:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    @pytest.mark.parametrize("op", ["sum", "min", "max"])
    def test_per_node_values_match_reference(self, family, builder, op):
        tree = gen.with_random_weights(builder(130), seed=4)
        res = solve(tree, SubtreeAggregate(op=op))
        reference = subtree_aggregate(tree, op=op)
        values = res.output["subtree_values"]
        assert set(values) == set(tree.nodes())
        for v in tree.nodes():
            assert values[v] == pytest.approx(reference[v])

    def test_subtree_size(self):
        tree = gen.random_attachment_tree(180, seed=6)
        res = solve(tree, SubtreeSize())
        sizes = tree.subtree_sizes()
        for v, got in res.output["subtree_values"].items():
            assert int(got) == sizes[v]

    def test_unsupported_op_rejected(self):
        with pytest.raises(ValueError):
            SubtreeAggregate(op="median")

    @given(st.integers(1, 80), st.integers(0, 30))
    @settings(max_examples=20, deadline=None)
    def test_sum_on_random_trees(self, n, seed):
        tree = gen.with_random_weights(gen.random_attachment_tree(n, seed=seed), seed=seed)
        res = solve(tree, SubtreeAggregate(op="sum"))
        assert res.value == pytest.approx(sum(tree.node_data.values()))


class TestDownwardAccumulations:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_depths_match_reference(self, family, builder):
        tree = builder(140)
        res = solve(tree, NodeDepth())
        depths = tree.depths()
        got = res.output["depths"]
        for v in tree.nodes():
            assert int(got[v]) == depths[v]

    def test_root_to_node_sums(self):
        tree = gen.with_random_weights(gen.random_attachment_tree(100, seed=2), seed=3)
        res = solve(tree, RootToNodeSum())
        got = res.output["prefix_sums"]
        # reference: accumulate down
        expected = {}
        for v in tree.bfs_order():
            expected[v] = tree.weight(v) + (expected[tree.parent[v]] if v != tree.root else 0.0)
        for v in tree.nodes():
            assert got[v] == pytest.approx(expected[v])

    def test_depth_with_high_degree_reduction(self):
        tree = gen.star_tree(500)
        res = solve(tree, NodeDepth())
        got = res.output["depths"]
        assert int(got[0]) == 0
        assert all(int(got[v]) == 1 for v in range(1, 500))


class TestExpressionEvaluation:
    def _expr_tree(self, n, seed):
        import random

        rng = random.Random(seed)
        t = gen.random_attachment_tree(n, seed=seed)
        data = {}
        for v in t.nodes():
            if t.is_leaf(v):
                data[v] = rng.randint(-4, 4)
            else:
                data[v] = {"op": rng.choice(["+", "*"])}
        return t.with_node_data(data)

    @pytest.mark.parametrize("n,seed", [(20, 0), (80, 1), (200, 2)])
    def test_matches_reference_modular(self, n, seed):
        tree = self._expr_tree(n, seed)
        mod = 1_000_000_007
        res = solve(tree, ArithmeticExpressionEvaluation(modulus=mod))
        assert int(res.value) == evaluate_expression_tree(tree, modulus=mod)

    def test_pure_sum_tree(self):
        tree = gen.with_random_weights(gen.balanced_kary_tree(63, 2), seed=5)
        data = {v: (tree.node_data[v] if tree.is_leaf(v) else {"op": "+"}) for v in tree.nodes()}
        tree = tree.with_node_data(data)
        res = solve(tree, ArithmeticExpressionEvaluation())
        assert res.value == pytest.approx(evaluate_expression_tree(tree))

    def test_unsupported_operator_raises(self):
        tree = gen.path_tree(3).with_node_data({0: {"op": "-"}, 1: {"op": "-"}, 2: 3})
        with pytest.raises(ValueError):
            solve(tree, ArithmeticExpressionEvaluation())


class TestXMLValidation:
    SCHEMA = XMLSchema(
        allowed_children={
            "book": {"chapter"},
            "chapter": {"section"},
            "section": {"para"},
            "para": set(),
        },
        allowed_root={"book"},
        max_children={"book": 50, "chapter": 50, "section": 50, "para": 0},
    )

    def _doc(self, n, valid=True, seed=0):
        t = gen.balanced_kary_tree(n, k=3)
        tags = ["book", "chapter", "section", "para"]
        data = {}
        for v, d in t.depths().items():
            data[v] = {"tag": tags[min(d, 3)]}
        if not valid:
            # introduce a structural violation deep in the document
            leaf = t.leaves()[-1]
            data[leaf] = {"tag": "book"}
        return t.with_node_data(data)

    @pytest.mark.parametrize("valid", [True, False])
    def test_validation_matches_reference(self, valid):
        # 40 nodes of a ternary tree stay within the schema's 4 tag levels.
        tree = self._doc(40, valid=valid)
        problem = XMLStructureValidation(self.SCHEMA).bind(tree)
        res = solve(tree, problem, degree_reduction=False)
        assert bool(res.output["valid"]) == validate_xml_tree(tree, self.SCHEMA)
        assert bool(res.output["valid"]) == valid

    def test_schema_free_validation_accepts_anything(self):
        tree = gen.random_attachment_tree(60, seed=1)
        problem = XMLStructureValidation().bind(tree)
        res = solve(tree, problem, degree_reduction=False)
        assert res.output["valid"]


class TestTreeMedian:
    def test_lower_median_definition(self):
        assert lower_median([5.0]) == 5.0
        assert lower_median([1.0, 9.0]) == 1.0
        assert lower_median([3.0, 1.0, 2.0]) == 2.0
        assert lower_median([4.0, 1.0, 3.0, 2.0]) == 2.0
        with pytest.raises(ValueError):
            lower_median([])

    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_matches_sequential_reference(self, family, builder):
        tree = gen.with_random_leaf_values(builder(150), seed=9)
        res = solve(tree, TreeMedian(), degree_reduction=False)
        ref = sequential_tree_median(tree)
        assert res.value == pytest.approx(ref[tree.root])
        got = res.output["medians"]
        for v in tree.nodes():
            assert got[v] == pytest.approx(ref[v])

    def test_high_degree_star(self):
        # The paper's motivating case: a star's median is the median of all leaves.
        tree = gen.with_random_leaf_values(gen.star_tree(301), seed=2)
        res = solve(tree, TreeMedian(), degree_reduction=False)
        assert res.value == pytest.approx(lower_median(list(tree.node_data.values())))

    @given(st.integers(2, 80), st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_random_trees(self, n, seed):
        tree = gen.with_random_leaf_values(gen.random_attachment_tree(n, seed=seed), seed=seed)
        res = solve(tree, TreeMedian(), degree_reduction=False)
        assert res.value == pytest.approx(sequential_tree_median(tree)[tree.root])
