"""Process execution backend: equivalence, failure modes and shm hygiene.

The tentpole contract — inline and process backends are bit-identical in
values, labels and :class:`~repro.mpc.simulator.RoundStats` — is exercised
end-to-end here (the full substrate-equivalence suite additionally runs
under ``REPRO_EXEC_BACKEND=process`` in CI).  On top of that, this module
pins down the failure model:

* a worker killed mid-superstep is *healed* by the supervision ladder (the
  pool is rebuilt, the idempotent call re-dispatched) with the kill visible
  only in the pool's :class:`~repro.mpc.exec.ExecHealth` report; with
  retries disabled it degrades to the warn-once inline fallback instead of
  hanging (the deterministic fault-injection matrix lives in
  :mod:`tests.test_exec_faults`);
* shared-memory segments are always unlinked, even on the error paths (a
  session-scoped fixture in :mod:`tests.conftest` asserts no segment leaks
  the whole suite);
* a platform without POSIX shared memory degrades to the inline backend
  with a one-time :class:`RuntimeWarning`;
* a problem that cannot be pickled degrades to inline layer batches with a
  one-time :class:`RuntimeWarning`, with identical results.
"""

from __future__ import annotations

import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.core.pipeline import prepare, solve_on
from repro.dynamic import node_update
from repro.mpc.config import MPCConfig
from repro.mpc.exec import ExecBackendError, resolve_backend
from repro.mpc.exec import base as exec_base
from repro.mpc.exec import shm
from repro.mpc.exec.base import INLINE, machine_group_bounds
from repro.mpc.exec.pool import ProcessBackend
from repro.mpc.simulator import MPCSimulator
from repro.mpc.treeops_array import compute_depths_array
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.trees import generators as gen

#: Every stat channel the equivalence contract covers.
_STAT_FIELDS = (
    "rounds",
    "charged_rounds",
    "rounds_by_label",
    "charged_by_label",
    "charged_words_by_label",
    "charged_words",
)


def _solve_with(tree, backend: str, workers: int = 3):
    """(result fields, stats fields) of one full pipeline run."""
    cfg = MPCConfig(n=max(4, len(tree.nodes())), exec_backend=backend, exec_workers=workers)
    sim = MPCSimulator(cfg)
    res = solve_on(prepare(tree, sim=sim), MaxWeightIndependentSet())
    outcome = (res.value, res.root_label, dict(res.node_labels), dict(res.edge_labels))
    stats = tuple(
        dict(v) if isinstance(v := getattr(sim.stats, f), dict) else v for f in _STAT_FIELDS
    )
    return outcome, stats


@pytest.mark.parametrize(
    "make_tree",
    [
        lambda: gen.with_random_weights(gen.random_attachment_tree(300, seed=5), seed=5),
        lambda: gen.with_random_weights(gen.caterpillar_tree(40, 3), seed=6),
        lambda: gen.with_random_weights(gen.balanced_kary_tree(3, 5), seed=7),
    ],
    ids=["random", "caterpillar", "3-ary"],
)
def test_process_backend_bit_identical_pipeline(make_tree):
    """Full pipeline (treeops + clustering + DP): same outputs, same stats."""
    inline_out, inline_stats = _solve_with(make_tree(), "inline")
    process_out, process_stats = _solve_with(make_tree(), "process")
    assert process_out == inline_out
    for field, a, b in zip(_STAT_FIELDS, inline_stats, process_stats):
        assert a == b, f"stats field {field} diverged"


def test_process_backend_worker_count_invariance():
    """The row partition cannot change a bit: 1..5 workers, same everything."""
    tree = gen.with_random_weights(gen.random_attachment_tree(200, seed=9), seed=9)
    reference = _solve_with(tree, "inline")
    for workers in (1, 2, 5):
        assert _solve_with(tree, "process", workers=workers) == reference


def test_incremental_updates_after_process_solve():
    """Point updates on a process-config deployment match an inline one.

    The incremental solver always runs inline (its driver-side memos are
    authoritative), but it must compose with a deployment whose full solves
    went through the worker pool.
    """
    results = {}
    for backend in ("inline", "process"):
        tree = gen.with_random_weights(gen.random_attachment_tree(150, seed=4), seed=4)
        cfg = MPCConfig(n=len(tree.nodes()), exec_backend=backend, exec_workers=2)
        prepared = prepare(tree, sim=MPCSimulator(cfg))
        solve_on(prepared, MaxWeightIndependentSet())  # warm a (possibly pooled) solve
        inc = prepared.incremental(MaxWeightIndependentSet())
        trace = []
        for step, node in enumerate(tree.nodes()[:10]):
            inc.apply_updates([node_update(node, float(step) + 0.5)])
            res = inc.solve_result()
            trace.append((res.value, dict(res.node_labels)))
        inc.refresh()
        final = inc.solve_result()
        trace.append((final.value, dict(final.node_labels)))
        results[backend] = trace
    assert results["process"] == results["inline"]


# --------------------------------------------------------------------------- #
# Failure modes
# --------------------------------------------------------------------------- #


def _depths_inputs(n: int, seed: int):
    tree = gen.random_attachment_tree(n, seed=seed)
    parent = {v: tree.parent[v] for v in tree.nodes() if v != tree.root}
    parent[tree.root] = tree.root
    return parent, tree.root


def test_killed_worker_heals_via_rebuild():
    """SIGKILL mid-session → the supervision ladder respawns the pool and the
    retried call succeeds; the kill is visible only in the health report."""
    backend = ProcessBackend(2)
    try:
        pids = backend.worker_pids()
        assert len(pids) == 2 and all(p > 0 for p in pids)

        arr = np.arange(64, dtype=np.int64)
        session = backend.array_session(
            {"jump": arr, "dist": arr.copy(), "new_jump": arr.copy(), "new_dist": arr.copy()},
            rows=64,
            num_machines=8,
        )
        os.kill(pids[0], signal.SIGKILL)
        t0 = time.monotonic()
        # Liveness polling detects the death, rebuilds the pool, re-attaches
        # the same shm segments and re-dispatches — long before the call
        # deadline and without surfacing an error.
        session.run("depths_step")
        assert time.monotonic() - t0 < 30.0
        assert backend.health.worker_deaths >= 1
        assert backend.health.rebuilds >= 1
        assert backend.health.inline_fallbacks == 0
        new_pids = backend.worker_pids()
        assert new_pids != pids
        assert all(_alive(p) for p in new_pids)
        session.close()
        assert shm.leaked_segments() == []

        # The rebuilt pool keeps working for fresh sessions, bit-identically.
        sim = MPCSimulator(MPCConfig(n=128))
        sim._executor = backend
        parent, root = _depths_inputs(128, seed=3)
        depths = compute_depths_array(sim, dict(parent), root)

        sim2 = MPCSimulator(MPCConfig(n=128))
        assert depths == compute_depths_array(sim2, dict(parent), root)
    finally:
        backend.close()


def test_killed_worker_without_retries_raises_cleanly():
    """retries=0 restores the old contract: death surfaces as
    ExecBackendError promptly and close() still unlinks every segment."""
    backend = ProcessBackend(2, retries=0)
    try:
        pids = backend.worker_pids()
        arr = np.arange(64, dtype=np.int64)
        session = backend.array_session(
            {"jump": arr, "dist": arr.copy(), "new_jump": arr.copy(), "new_dist": arr.copy()},
            rows=64,
            num_machines=8,
        )
        os.kill(pids[0], signal.SIGKILL)
        t0 = time.monotonic()
        with warnings.catch_warnings():
            # Zero retries means the ladder is already exhausted: the session
            # degrades inline (warn-once) instead of failing the solve.
            warnings.simplefilter("ignore", RuntimeWarning)
            session.run("depths_step")
        assert time.monotonic() - t0 < 30.0
        assert backend.health.worker_deaths == 1
        assert backend.health.inline_fallbacks == 1
        session.close()
        assert shm.leaked_segments() == []
    finally:
        backend.close()


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def test_worker_exception_surfaces_traceback():
    """A worker-side Python error arrives as ExecBackendError with context."""
    backend = ProcessBackend(2)
    try:
        backend.worker_pids()
        with pytest.raises(ExecBackendError, match="no-such-op"):
            backend._call_all("op", ("no-such-op", 0, 0, {}))
    finally:
        backend.close()


def test_sessions_unlink_segments_on_success():
    """The normal path leaves nothing behind in /dev/shm."""
    cfg = MPCConfig(n=256, exec_backend="process", exec_workers=2)
    sim = MPCSimulator(cfg)
    parent, root = _depths_inputs(256, seed=8)
    compute_depths_array(sim, parent, root)
    assert shm.leaked_segments() == []


def test_no_shm_platform_falls_back_inline_with_warning(monkeypatch):
    """shm probe failure → inline backend + one RuntimeWarning per process."""
    monkeypatch.setattr(shm, "_SHM_OK", False)
    monkeypatch.setattr(exec_base, "_FALLBACK_WARNED", False)
    cfg = MPCConfig(n=64, exec_backend="process")
    with pytest.warns(RuntimeWarning, match="falling back to the inline"):
        assert resolve_backend(cfg) is INLINE
    # Warned once; later resolutions stay silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend(cfg) is INLINE


def test_unshippable_problem_runs_inline_with_warning():
    """A non-picklable problem degrades per-solve, with identical results."""

    class LocalMWIS(MaxWeightIndependentSet):  # local class: cannot pickle
        name = "local-mwis"

    tree = gen.with_random_weights(gen.random_attachment_tree(120, seed=10), seed=10)
    baseline = solve_on(prepare(tree), MaxWeightIndependentSet())

    cfg = MPCConfig(n=len(tree.nodes()), exec_backend="process", exec_workers=2)
    prepared = prepare(tree, sim=MPCSimulator(cfg))
    with pytest.warns(RuntimeWarning, match="cannot be shipped"):
        res = solve_on(prepared, LocalMWIS())
    assert res.value == baseline.value
    assert res.node_labels == baseline.node_labels


# --------------------------------------------------------------------------- #
# Configuration and partitioning
# --------------------------------------------------------------------------- #


def test_config_validates_exec_fields(monkeypatch):
    monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
    assert MPCConfig(n=64).exec_backend == "inline"
    assert MPCConfig(n=64, exec_backend="process").exec_workers is None
    with pytest.raises(ValueError):
        MPCConfig(n=64, exec_backend="threads")
    with pytest.raises(ValueError):
        MPCConfig(n=64, exec_workers=0)

    monkeypatch.setenv("REPRO_EXEC_BACKEND", "process")
    monkeypatch.setenv("REPRO_EXEC_WORKERS", "3")
    cfg = MPCConfig(n=64)
    assert (cfg.exec_backend, cfg.exec_workers) == ("process", 3)
    # Explicit arguments beat the environment.
    assert MPCConfig(n=64, exec_backend="inline").exec_backend == "inline"

    # The supervision knobs validate the same way.
    with pytest.raises(ValueError):
        MPCConfig(n=64, exec_retries=-1)
    with pytest.raises(ValueError):
        MPCConfig(n=64, exec_backoff=-0.5)
    with pytest.raises(ValueError):
        MPCConfig(n=64, exec_heartbeat=0.0)
    with pytest.raises(ValueError):
        MPCConfig(n=64, exec_call_timeout=0.0)
    monkeypatch.setenv("REPRO_EXEC_RETRIES", "5")
    monkeypatch.setenv("REPRO_EXEC_BACKOFF", "0.5")
    monkeypatch.setenv("REPRO_EXEC_HEARTBEAT", "1.5")
    monkeypatch.setenv("REPRO_EXEC_TIMEOUT", "60")
    cfg = MPCConfig(n=64)
    assert (cfg.exec_retries, cfg.exec_backoff) == (5, 0.5)
    assert (cfg.exec_heartbeat, cfg.exec_call_timeout) == (1.5, 60.0)
    assert MPCConfig(n=64, exec_retries=0).exec_retries == 0  # explicit wins


def test_config_scaled_carries_exec_fields():
    cfg = MPCConfig(
        n=64,
        exec_backend="process",
        exec_workers=2,
        exec_retries=1,
        exec_backoff=0.25,
        exec_heartbeat=0.5,
        exec_call_timeout=30.0,
        exec_faults="kill@w0:1",
    )
    scaled = cfg.scaled(4096)
    assert (scaled.exec_backend, scaled.exec_workers) == ("process", 2)
    assert (scaled.exec_retries, scaled.exec_backoff) == (1, 0.25)
    assert (scaled.exec_heartbeat, scaled.exec_call_timeout) == (0.5, 30.0)
    assert scaled.exec_faults == "kill@w0:1"


@pytest.mark.parametrize("rows", [0, 1, 7, 64, 1000])
@pytest.mark.parametrize("slots", [1, 2, 3, 8])
def test_machine_group_bounds_partition_rows(rows, slots):
    """Bounds are contiguous, ordered and cover exactly [0, rows)."""
    num_machines = max(1, rows // 4)
    bounds = machine_group_bounds(rows, num_machines, slots)
    assert len(bounds) == slots
    cursor = 0
    for lo, hi in bounds:
        assert lo == cursor and hi >= lo
        cursor = hi
    assert cursor == rows
