"""Unit tests for the vectorized kernel subsystem (repro.dp.kernels)."""

import numpy as np
import pytest

from repro.core.pipeline import prepare, solve_on
from repro.dp.kernels import (
    CountingModKernel,
    MaxPlusKernel,
    MinPlusKernel,
    StateSpace,
    SumProductKernel,
    UndeclaredStateError,
    kernel_for,
    summary_as_dict,
)
from repro.dp.local_solver import FiniteStateClusterSolver, backend_ineligibility
from repro.dp.problem import FiniteStateDP
from repro.dp.semiring import MAX_PLUS, MIN_PLUS, SUM_PRODUCT, Semiring, counting_mod
from repro.mpc.config import MPCConfig
from repro.problems.counting_matchings import CountMatchingsModK
from repro.problems.edge_coloring import EdgeColoring
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.problems.min_weight_dominating_set import MinWeightDominatingSet
from repro.problems.sum_coloring import SumColoring
from repro.trees import generators as gen

from tests.conftest import FAMILIES, FAMILY_IDS


class TestStateSpace:
    def test_roundtrip(self):
        space = StateSpace(("in", "out", "maybe"))
        assert len(space) == 3
        for i, s in enumerate(space.states):
            assert space.encode(s) == i
            assert space.decode(i) == s
        assert "in" in space and "gone" not in space

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            StateSpace(("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StateSpace(())


class TestKernelRegistry:
    def test_shipped_semirings_have_kernels(self):
        assert isinstance(kernel_for(MIN_PLUS), MinPlusKernel)
        assert isinstance(kernel_for(MAX_PLUS), MaxPlusKernel)
        assert isinstance(kernel_for(SUM_PRODUCT), SumProductKernel)
        assert isinstance(kernel_for(counting_mod(97)), CountingModKernel)

    def test_exotic_semiring_has_no_kernel(self):
        exotic = Semiring(
            name="boolean-or-and",
            plus=lambda a, b: a or b,
            times=lambda a, b: a and b,
            zero=False,
            one=True,
            selective=False,
        )
        assert kernel_for(exotic) is None

    def test_oversized_counting_modulus_rejected(self):
        assert kernel_for(counting_mod(2**62)) is None

    def test_tropical_reductions_break_ties_to_first(self):
        k = kernel_for(MIN_PLUS)
        arr = np.array([[3.0, 1.0, 1.0, 2.0]])
        assert k.argreduce(arr, axis=1).tolist() == [1]
        k2 = kernel_for(MAX_PLUS)
        arr2 = np.array([2.0, 5.0, 5.0])
        assert int(k2.argreduce_flat(arr2)) == 1

    def test_counting_reduce_is_exact(self):
        k = kernel_for(counting_mod(997))
        a = np.array([990, 995], dtype=np.int64)
        b = np.array([993, 991], dtype=np.int64)
        combined = k.combine(a, b)
        assert combined.tolist() == [(990 * 993) % 997, (995 * 991) % 997]
        assert int(k.reduce(combined, axis=0)) == sum(combined.tolist()) % 997


class TestBackendSelection:
    def test_auto_prefers_numpy_when_eligible(self):
        solver = FiniteStateClusterSolver(MaxWeightIndependentSet())
        assert solver.backend == "numpy"

    def test_auto_falls_back_for_undeclared_acc_states(self):
        solver = FiniteStateClusterSolver(EdgeColoring(k=4))
        assert solver.backend == "python"
        assert backend_ineligibility(EdgeColoring(k=4)) is not None

    def test_forced_numpy_rejects_ineligible_problem(self):
        with pytest.raises(ValueError, match="numpy backend unavailable"):
            FiniteStateClusterSolver(EdgeColoring(k=4), backend="numpy")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            FiniteStateClusterSolver(MaxWeightIndependentSet(), backend="gpu")

    def test_config_validates_and_propagates_backend(self):
        with pytest.raises(ValueError):
            MPCConfig(n=64, dp_backend="fortran")
        cfg = MPCConfig(n=64, dp_backend="python")
        assert cfg.scaled(256).dp_backend == "python"

    def test_pipeline_backend_threading(self):
        tree = gen.with_random_weights(gen.random_attachment_tree(60, seed=1), seed=1)
        prepared = prepare(tree, backend="python")
        assert prepared.sim.config.dp_backend == "python"
        res = solve_on(prepared, MaxWeightIndependentSet())
        assert res.value == pytest.approx(
            solve_on(prepared, MaxWeightIndependentSet(), backend="numpy").value
        )


class _BadAccProblem(FiniteStateDP):
    """Declares an accumulator space that its transitions escape."""

    states = ("a", "b")
    acc_states = ("start",)
    semiring = MIN_PLUS
    name = "bad-acc-problem"

    def node_init(self, v):
        yield ("start", 0.0)

    def transition(self, v, acc, child_state, edge):
        yield ("undeclared", 0.0)

    def finalize(self, v, acc):
        yield ("a", 0.0)


def test_undeclared_acc_state_raises_clearly():
    tree = gen.path_tree(20)
    prepared = prepare(tree)
    with pytest.raises(UndeclaredStateError, match="undeclared"):
        solve_on(prepared, _BadAccProblem(), backend="numpy")


class TestSummaries:
    def test_dense_and_dict_summaries_normalise_equal(self):
        tree = gen.with_random_weights(gen.random_attachment_tree(80, seed=4), seed=4)
        prepared = prepare(tree)
        res_py = solve_on(prepared, MaxWeightIndependentSet(), backend="python")
        res_np = solve_on(prepared, MaxWeightIndependentSet(), backend="numpy")
        space = StateSpace(MaxWeightIndependentSet.states)
        zero = MAX_PLUS.zero
        for cid, dense_summary in res_np.solve_result.summaries.items():
            dict_summary = res_py.solve_result.summaries[cid]
            assert dense_summary["kind"] == dict_summary["kind"]
            assert summary_as_dict(dense_summary, space, zero) == pytest.approx(
                summary_as_dict(dict_summary, space, zero)
            )


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize(
    "make_problem",
    [
        MaxWeightIndependentSet,
        MinWeightDominatingSet,
        lambda: SumColoring(k=3),
        lambda: CountMatchingsModK(k=997),
    ],
    ids=["mwis", "domset", "sumcol", "countmatch"],
)
def test_backends_identical_across_families(family, builder, make_problem):
    """Values and labels are bit-identical on every tree family."""
    tree = gen.with_random_weights(builder(150), seed=7)
    prepared = prepare(tree)
    res_py = solve_on(prepared, make_problem(), backend="python")
    res_np = solve_on(prepared, make_problem(), backend="numpy")
    assert res_py.value == res_np.value
    assert res_py.edge_labels == res_np.edge_labels
    assert res_py.node_labels == res_np.node_labels
