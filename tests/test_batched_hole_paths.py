"""Tests for the layer-wide hole-path batching and the clause-aware affine
decomposition (weighted max-SAT), plus the satellite bugfixes riding along:
NaN/empty handling in the MPC extremum folds, the no-NaN guarantee of the
affine composition, and solve_many's per-problem backend validation.
"""

import random

import numpy as np
import pytest

from repro.core.pipeline import prepare, solve_many, solve_on
from repro.dp.kernels.dense_local import DenseClusterKernel
from repro.dp.local_solver import FiniteStateClusterSolver
from repro.dp.problem import EdgeInfo, FiniteStateDP, NodeInput
from repro.dp.semiring import MIN_PLUS
from repro.mpc.primitives import mpc_max, mpc_min
from repro.problems.edge_coloring import EdgeColoring
from repro.problems.max_weight_independent_set import MaxWeightIndependentSet
from repro.problems.weighted_max_sat import (
    WeightedMaxSAT,
    max_sat_value_of_assignment,
    sequential_max_sat,
)
from repro.trees import generators as gen

from tests.conftest import FAMILIES, FAMILY_IDS


def _with_clauses(tree, seed, max_per_node=1, max_per_edge=1):
    """Decorate a tree with random unit and binary clauses (the SAT input)."""
    rng = random.Random(seed)
    node_data = {
        v: {
            "clauses": [
                (rng.random() < 0.5, round(rng.uniform(0, 5), 2))
                for _ in range(rng.randint(0, max_per_node))
            ]
        }
        for v in tree.nodes()
    }
    t = tree.with_node_data(node_data)
    t.edge_data = {
        e: {
            "clauses": [
                (rng.random() < 0.5, rng.random() < 0.5, round(rng.uniform(0, 5), 2))
                for _ in range(rng.randint(0, max_per_edge))
            ]
        }
        for e in tree.edges()
    }
    return t


# --------------------------------------------------------------------------- #
# Backend equivalence: batched hole paths + clause-aware max-SAT
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
def test_max_sat_backends_identical_across_families(family, builder):
    """The clause-aware affine path is bit-identical on every tree family."""
    tree = _with_clauses(builder(140), seed=13)
    prepared = prepare(tree)
    res_py = solve_on(prepared, WeightedMaxSAT(), backend="python")
    res_np = solve_on(prepared, WeightedMaxSAT(), backend="numpy")
    assert res_py.value == res_np.value
    assert res_py.edge_labels == res_np.edge_labels
    assert res_py.node_labels == res_np.node_labels
    assert res_np.value == pytest.approx(sequential_max_sat(tree))


@pytest.mark.parametrize("seed", range(8))
def test_max_sat_random_clause_sets_property(seed):
    """Property-style sweep: random tree shapes and 0..3 clauses per site.

    Multi-clause sets exercise the per-pattern weight aggregation; the two
    backends must stay bit-identical, match the sequential reference, and
    return an assignment that actually scores the reported value.
    """
    rng = random.Random(seed)
    n = rng.randint(30, 90)
    base = gen.random_attachment_tree(n, seed=seed)
    tree = _with_clauses(base, seed=seed + 100, max_per_node=3, max_per_edge=3)
    prepared = prepare(tree)
    res_py = solve_on(prepared, WeightedMaxSAT(), backend="python")
    res_np = solve_on(prepared, WeightedMaxSAT(), backend="numpy")
    assert res_py.value == res_np.value
    assert res_py.edge_labels == res_np.edge_labels
    assert res_np.value == pytest.approx(sequential_max_sat(tree))
    assignment = res_np.output["assignment"]
    assert max_sat_value_of_assignment(tree, assignment) == pytest.approx(res_np.value)


def test_hole_path_batching_actually_runs(monkeypatch):
    """A path tree drives clusters through the batched hole-path scheduler.

    Guards against the scheduler silently degrading to the per-cluster walk
    (results would stay correct but the tentpole batching would be dead
    code): at least one stacked hole-path group must be solved.
    """
    calls = {"mat": 0, "group": 0}
    orig_mat = DenseClusterKernel._solve_mat_group
    orig_group = DenseClusterKernel._solve_group

    def count_mat(self, members, tables, traces):
        calls["mat"] += 1
        return orig_mat(self, members, tables, traces)

    def count_group(self, sig, members, tables, traces):
        calls["group"] += 1
        return orig_group(self, sig, members, tables, traces)

    monkeypatch.setattr(DenseClusterKernel, "_solve_mat_group", count_mat)
    monkeypatch.setattr(DenseClusterKernel, "_solve_group", count_group)
    tree = gen.with_random_weights(gen.path_tree(300), seed=5)
    res = solve_on(prepare(tree), MaxWeightIndependentSet(), backend="numpy")
    assert calls["mat"] + calls["group"] > 0
    assert res.value == pytest.approx(
        solve_on(prepare(tree), MaxWeightIndependentSet(), backend="python").value
    )


def test_hole_plan_is_ordered_and_cached():
    tree = gen.with_random_weights(gen.caterpillar_tree(80), seed=3)
    prepared = prepare(tree)
    engine = prepared.engine()
    hc = prepared.clustering
    seen = 0
    for layer in range(1, hc.num_layers + 1):
        for cluster in hc.clusters_at_layer(layer):
            ctx = engine.context(cluster, {})
            plan = ctx.hole_plan()
            if cluster.in_edge is None:
                assert plan == []
                continue
            seen += 1
            assert plan[0][1] == cluster.hole_element
            assert plan[-1][1] == cluster.top_element
            assert plan[0][3] is None
            for prev, entry in zip(plan, plan[1:]):
                assert entry[3] == prev[1]  # each entry absorbs its predecessor
            assert ctx.hole_plan() is plan  # cached on the cluster
    assert seen > 0


# --------------------------------------------------------------------------- #
# Unreachable states through the affine decomposition (inf * 0 guard)
# --------------------------------------------------------------------------- #


class _AffineGapProblem(FiniteStateDP):
    """Min-plus problem whose transition tensor contains identity (+inf)
    entries while both rules go through the affine decomposition."""

    states = ("lo", "hi")
    acc_states = ("even", "odd")
    semiring = MIN_PLUS
    name = "affine-gap"

    def init_key(self, v):
        return ()

    def node_init(self, v):
        yield ("even", 0.0)

    def transition(self, v, acc, child_state, edge):
        w = edge.weight(0.0) if edge is not None else 0.0
        if child_state == "hi":
            if acc == "even":
                yield ("odd", w)
            # acc == "odd": infeasible — identity (+inf) cells in the tensor
        else:
            yield (acc, 0.5 * w)

    def transition_affine_key(self, v, edge):
        return ("gap-edge",), (edge.weight(0.0),)

    def transition_affine_probe(self, v, edge, weights):
        return v, EdgeInfo(edge=edge.edge, kind=edge.kind, data={"weight": weights[0]})

    def finalize(self, v, acc):
        w = v.weight(0.0)
        if acc == "even":
            yield ("lo", w)
            yield ("hi", 0.0)
        else:
            yield ("hi", w)  # "lo" unreachable from "odd": identity cells in F

    def finalize_affine_key(self, v):
        return ("gap-node",), (v.weight(0.0),)

    def finalize_affine_probe(self, v, weights):
        return NodeInput(node=v.node, data=weights[0], is_auxiliary=v.is_auxiliary)


class TestAffineIdentityEntries:
    def test_composed_tables_carry_identity_without_nan(self):
        solver = FiniteStateClusterSolver(_AffineGapProblem(), backend="numpy")
        tensors = solver._dense.tensors
        v = NodeInput(node=0, data=1.5)
        edge = EdgeInfo(edge=(1, 0), data={"weight": 2.0})
        T = tensors.transition_tensor(v, edge)
        F = tensors.finalize_mat(v)
        assert np.isinf(T).any() and np.isinf(F).any()  # identity rows survive
        assert not np.isnan(T).any() and not np.isnan(F).any()

    def test_backends_identical_with_identity_entries(self):
        tree = gen.with_random_weights(gen.caterpillar_tree(120), seed=9)
        prepared = prepare(tree)
        res_py = solve_on(prepared, _AffineGapProblem(), backend="python")
        res_np = solve_on(prepared, _AffineGapProblem(), backend="numpy")
        assert res_py.value == res_np.value
        assert res_py.edge_labels == res_np.edge_labels

    def test_nonfinite_affine_weight_raises(self):
        solver = FiniteStateClusterSolver(MaxWeightIndependentSet(), backend="numpy")
        tensors = solver._dense.tensors
        v = NodeInput(node=0, data=1.0)
        pair = tensors.finalize_affine_pair((False,), v, 1.0)
        assert pair is not None
        base, masks = pair
        with pytest.raises(FloatingPointError, match="non-finite affine weight"):
            tensors.compose_affine(base, masks, np.array([[float("inf")]]))

    def test_affine_arity_mismatch_raises(self):
        solver = FiniteStateClusterSolver(MaxWeightIndependentSet(), backend="numpy")
        tensors = solver._dense.tensors
        v = NodeInput(node=0, data=1.0)
        base, masks = tensors.finalize_affine_pair((False,), v, 1.0)
        with pytest.raises(ValueError, match="must declare the same number"):
            tensors.compose_affine(base, masks, np.array([[1.0, 2.0]]))


# --------------------------------------------------------------------------- #
# MPC extremum folds: NaN and empty-input handling
# --------------------------------------------------------------------------- #

NAN = float("nan")


class TestMpcExtremes:
    def test_min_max_basic(self, simulator):
        records = [3.0, -1.5, 7.25, 0.0]
        assert mpc_max(simulator, records, lambda x: x) == 7.25
        assert mpc_min(simulator, records, lambda x: x) == -1.5

    def test_nan_raises_by_default(self, simulator):
        with pytest.raises(ValueError, match="NaN"):
            mpc_max(simulator, [1.0, NAN, 2.0], lambda x: x)
        with pytest.raises(ValueError, match="NaN"):
            mpc_min(simulator, [NAN], lambda x: x)

    def test_nan_skip_ignores_nan_records(self, simulator):
        assert mpc_max(simulator, [1.0, NAN, 2.0], lambda x: x, nan="skip") == 2.0
        assert mpc_min(simulator, [NAN, 4.0, 9.0], lambda x: x, nan="skip") == 4.0

    def test_all_nan_under_skip_raises(self, simulator):
        with pytest.raises(ValueError, match="all records were NaN"):
            mpc_max(simulator, [NAN, NAN], lambda x: x, nan="skip")

    def test_empty_records_raise(self, simulator):
        with pytest.raises(ValueError, match="empty record set"):
            mpc_min(simulator, [], lambda x: x)
        with pytest.raises(ValueError, match="empty record set"):
            mpc_max(simulator, [], lambda x: x)

    def test_unknown_nan_policy_rejected(self, simulator):
        with pytest.raises(ValueError, match="nan must be"):
            mpc_max(simulator, [1.0], lambda x: x, nan="ignore")


# --------------------------------------------------------------------------- #
# solve_many: batch validation and per-problem backend fallback
# --------------------------------------------------------------------------- #


class TestSolveManyValidation:
    def test_numpy_request_falls_back_per_problem_with_warning(self):
        tree = gen.with_random_weights(gen.path_tree(40), seed=4)
        with pytest.warns(RuntimeWarning, match="falling back to the scalar backend"):
            out = solve_many(
                tree, [MaxWeightIndependentSet(), EdgeColoring(k=3)], backend="numpy"
            )
        assert set(out) == {"maximum-weight independent set", "edge coloring"}
        solo = solve_on(prepare(tree), MaxWeightIndependentSet(), backend="numpy")
        assert out["maximum-weight independent set"].value == solo.value

    def test_unsupported_problem_type_rejected_before_solving(self):
        tree = gen.path_tree(20)
        with pytest.raises(TypeError, match="unsupported problem type"):
            solve_many(tree, [MaxWeightIndependentSet(), object()])

    def test_duplicate_names_warn(self):
        tree = gen.with_random_weights(gen.path_tree(30), seed=6)
        with pytest.warns(RuntimeWarning, match="duplicate problem name"):
            solve_many(tree, [MaxWeightIndependentSet(), MaxWeightIndependentSet()])
