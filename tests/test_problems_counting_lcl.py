"""Counting, constraint-satisfaction (LCL) and remaining Table-1 problems."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import solve
from repro.problems.counting_matchings import CountMatchingsModK, sequential_count_matchings
from repro.problems.edge_coloring import EdgeColoring, is_proper_edge_coloring
from repro.problems.longest_path import LongestPath, sequential_longest_path
from repro.problems.maximal_independent_set import (
    MaximalIndependentSet,
    is_maximal_independent_set,
)
from repro.problems.sum_coloring import SumColoring, is_proper_coloring, sequential_sum_coloring
from repro.problems.vertex_coloring import VertexColoring, is_proper_vertex_coloring
from repro.problems.weighted_max_sat import (
    WeightedMaxSAT,
    max_sat_value_of_assignment,
    sequential_max_sat,
)
from repro.trees import generators as gen

from tests.conftest import FAMILIES, FAMILY_IDS


class TestCountingMatchings:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_matches_reference_mod_k(self, family, builder):
        tree = builder(120)
        k = 10_007
        res = solve(tree, CountMatchingsModK(k=k))
        assert int(res.value) == sequential_count_matchings(tree, k=k)

    def test_small_closed_forms(self):
        # A path with e edges has Fibonacci(e + 2) matchings.
        fib = [1, 1]
        for _ in range(20):
            fib.append(fib[-1] + fib[-2])
        for n in (1, 2, 3, 5, 8, 13):
            res = solve(gen.path_tree(n), CountMatchingsModK(k=1_000_003))
            assert int(res.value) == fib[n]
        # A star with l leaves has l + 1 matchings.
        for n in (2, 5, 9):
            res = solve(gen.star_tree(n), CountMatchingsModK(k=1_000_003))
            assert int(res.value) == n

    def test_counting_skips_topdown(self):
        res = solve(gen.path_tree(30), CountMatchingsModK(k=97))
        assert res.edge_labels == {}

    @given(st.integers(1, 60), st.integers(0, 50), st.sampled_from([2, 3, 97]))
    @settings(max_examples=20, deadline=None)
    def test_random_trees_mod_small_k(self, n, seed, k):
        tree = gen.random_attachment_tree(n, seed=seed)
        expected = sequential_count_matchings(tree, k=k)
        assert int(solve(tree, CountMatchingsModK(k=k)).value) == expected


class TestColorings:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_vertex_coloring_is_proper(self, family, builder):
        tree = builder(150)
        res = solve(tree, VertexColoring(k=3))
        assert res.output["feasible"]
        assert is_proper_vertex_coloring(tree, res.output["coloring"])

    def test_two_colors_suffice_on_trees(self):
        tree = gen.random_attachment_tree(120, seed=8)
        res = solve(tree, VertexColoring(k=2))
        assert is_proper_vertex_coloring(tree, res.output["coloring"])

    def test_list_coloring_respects_allowed_lists(self):
        tree = gen.path_tree(40)
        data = {v: {"allowed": [1, 2] if v % 2 == 0 else [2, 3]} for v in tree.nodes()}
        res = solve(tree.with_node_data(data), VertexColoring(k=3))
        coloring = res.output["coloring"]
        assert is_proper_vertex_coloring(tree, coloring)
        for v, c in coloring.items():
            assert c in data[v]["allowed"]

    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_sum_coloring_matches_reference(self, family, builder):
        tree = builder(140)
        res = solve(tree, SumColoring(k=3))
        assert res.value == pytest.approx(sequential_sum_coloring(tree, k=3))
        assert is_proper_coloring(tree, res.output["coloring"])

    def test_sum_coloring_path_closed_form(self):
        # On a path the optimum alternates colours 1 and 2.
        n = 41
        res = solve(gen.path_tree(n), SumColoring(k=3))
        assert res.value == pytest.approx(21 * 1 + 20 * 2)

    def test_edge_coloring_bounded_degree(self):
        tree = gen.balanced_kary_tree(121, k=3)
        res = solve(tree, EdgeColoring(k=5), degree_reduction=False)
        assert res.output["feasible"]
        assert is_proper_edge_coloring(tree, res.output["edge_coloring"])

    def test_edge_coloring_path_two_colors(self):
        tree = gen.path_tree(50)
        res = solve(tree, EdgeColoring(k=2), degree_reduction=False)
        assert is_proper_edge_coloring(tree, res.output["edge_coloring"])

    def test_edge_coloring_rejects_large_k(self):
        with pytest.raises(ValueError):
            EdgeColoring(k=20)


class TestMaximalIndependentSet:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_output_is_maximal_independent(self, family, builder):
        tree = builder(160)
        res = solve(tree, MaximalIndependentSet())
        assert is_maximal_independent_set(tree, res.output["maximal_independent_set"])

    def test_single_node(self):
        res = solve(gen.path_tree(1), MaximalIndependentSet())
        assert res.output["maximal_independent_set"] == [0]


class TestWeightedMaxSAT:
    def _instance(self, n, seed):
        import random

        rng = random.Random(seed)
        t = gen.random_attachment_tree(n, seed=seed)
        node_data = {
            v: {"clauses": [(rng.random() < 0.5, round(rng.uniform(0, 3), 2))]} for v in t.nodes()
        }
        edge_data = {
            e: {
                "clauses": [
                    (rng.random() < 0.5, rng.random() < 0.5, round(rng.uniform(0, 3), 2))
                    for _ in range(rng.randint(0, 2))
                ]
            }
            for e in t.edges()
        }
        t = t.with_node_data(node_data)
        t.edge_data = edge_data
        return t

    @pytest.mark.parametrize("n,seed", [(50, 0), (120, 1), (200, 2)])
    def test_matches_reference(self, n, seed):
        tree = self._instance(n, seed)
        res = solve(tree, WeightedMaxSAT())
        assert res.value == pytest.approx(sequential_max_sat(tree))

    def test_returned_assignment_achieves_value(self):
        tree = self._instance(150, 7)
        res = solve(tree, WeightedMaxSAT())
        assignment = res.output["assignment"]
        assert max_sat_value_of_assignment(tree, assignment) == pytest.approx(res.value)


class TestLongestPath:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_unweighted_matches_reference(self, family, builder):
        tree = builder(170)
        res = solve(tree, LongestPath())
        assert res.value == pytest.approx(sequential_longest_path(tree))

    def test_unweighted_equals_diameter(self):
        from repro.trees.properties import diameter

        for builder in (gen.path_tree, gen.broom_tree, gen.complete_binary_tree):
            tree = builder(200)
            assert solve(tree, LongestPath()).value == pytest.approx(diameter(tree))

    def test_weighted_edges(self):
        import random

        rng = random.Random(3)
        tree = gen.random_attachment_tree(150, seed=3)
        tree.edge_data = {e: round(rng.uniform(0.1, 5.0), 3) for e in tree.edges()}
        res = solve(tree, LongestPath())
        assert res.value == pytest.approx(sequential_longest_path(tree))

    @given(st.integers(1, 50), st.integers(0, 40))
    @settings(max_examples=20, deadline=None)
    def test_random_trees(self, n, seed):
        tree = gen.random_attachment_tree(n, seed=seed)
        assert solve(tree, LongestPath()).value == pytest.approx(sequential_longest_path(tree))
