"""Engine-level tests: invariants of the bottom-up/top-down passes, table sizes."""

import pytest

from repro.core.pipeline import prepare, solve, solve_many, solve_on
from repro.dp.engine import ROUNDS_PER_LAYER
from repro.mpc.words import word_size
from repro.problems.max_weight_independent_set import (
    MaxWeightIndependentSet,
    sequential_max_weight_independent_set,
)
from repro.problems.min_weight_vertex_cover import MinWeightVertexCover
from repro.problems.subtree_aggregation import SubtreeAggregate
from repro.problems.tree_median import TreeMedian
from repro.trees import generators as gen

from tests.conftest import FAMILIES, FAMILY_IDS


class TestSummaries:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_finite_state_tables_are_constant_words(self, family, builder):
        """Definition 1.2: every cluster summary must be O(1) words."""
        tree = gen.with_random_weights(builder(200), seed=1)
        res = solve(tree, MaxWeightIndependentSet())
        sizes = [word_size(s) for s in res.solve_result.summaries.values()]
        # 2 states -> at most a 2-vector or 2x2 matrix plus structural overhead.
        assert max(sizes) <= 40

    def test_accumulation_tables_are_constant_words(self):
        tree = gen.with_random_leaf_values(gen.path_tree(300), seed=2)
        res = solve(tree, TreeMedian(), degree_reduction=False)
        sizes = [word_size(s) for s in res.solve_result.summaries.values()]
        assert max(sizes) <= 16

    def test_every_cluster_summarized(self):
        tree = gen.with_random_weights(gen.random_attachment_tree(150, seed=3), seed=3)
        res = solve(tree, MaxWeightIndependentSet())
        prepared = res.prepared
        assert set(res.solve_result.summaries) == set(prepared.clustering.clusters)


class TestLabels:
    @pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
    def test_every_edge_labelled(self, family, builder):
        tree = gen.with_random_weights(builder(120), seed=4)
        res = solve(tree, MaxWeightIndependentSet())
        assert set(res.edge_labels) == set(tree.edges())
        assert set(res.node_labels) == set(tree.nodes())

    def test_labels_consistent_with_value(self):
        tree = gen.with_random_weights(gen.caterpillar_tree(200), seed=5)
        res = solve(tree, MaxWeightIndependentSet())
        in_weight = sum(tree.weight(v) for v, s in res.node_labels.items() if s == "in")
        assert in_weight == pytest.approx(res.value)


class TestRoundAccounting:
    def test_dp_rounds_proportional_to_layers(self):
        tree = gen.with_random_weights(gen.random_attachment_tree(300, seed=6), seed=6)
        prepared = prepare(tree)
        res = solve_on(prepared, MaxWeightIndependentSet())
        layers = prepared.clustering.num_layers
        # bottom-up + top-down, constant rounds per layer
        assert res.rounds["dp"] == 2 * layers * ROUNDS_PER_LAYER

    def test_dp_rounds_independent_of_n_at_fixed_layers(self):
        small = prepare(gen.with_random_weights(gen.broom_tree(200), seed=1))
        large = prepare(gen.with_random_weights(gen.broom_tree(2000), seed=1))
        r_small = solve_on(small, MaxWeightIndependentSet()).rounds["dp"]
        r_large = solve_on(large, MaxWeightIndependentSet()).rounds["dp"]
        # A 10x larger input may change the layer count by a small constant
        # (thresholds are floored for small n), never proportionally to n.
        assert r_large <= r_small + 4 * ROUNDS_PER_LAYER

    def test_dp_rounds_charged_under_stable_label(self):
        """Engine rounds are charged under the "dp-pass" label, per pass.

        Benchmarks key on this label to separate DP rounds from clustering
        rounds; it is part of the engine's public accounting contract and
        identical for both local-solve backends.
        """
        tree = gen.with_random_weights(gen.random_attachment_tree(200, seed=12), seed=12)
        for backend in ("python", "numpy"):
            prepared = prepare(tree, backend=backend)
            res = solve_on(prepared, MaxWeightIndependentSet())
            charged = prepared.sim.stats.charged_by_label
            assert "dp-pass" in charged
            layers = prepared.clustering.num_layers
            # bottom-up + top-down, ROUNDS_PER_LAYER each
            assert charged["dp-pass"] == 2 * layers * ROUNDS_PER_LAYER
            assert charged["dp-pass"] == res.rounds["dp"]

    def test_value_only_problems_use_half_the_passes(self):
        from repro.problems.counting_matchings import CountMatchingsModK

        prepared = prepare(gen.random_attachment_tree(200, seed=2))
        with_labels = solve_on(prepared, MaxWeightIndependentSet())
        value_only = solve_on(prepared, CountMatchingsModK(k=97))
        assert value_only.solve_result.rounds < with_labels.solve_result.rounds


class TestClusteringReuse:
    def test_one_clustering_many_problems(self):
        tree = gen.with_random_weights(gen.random_attachment_tree(250, seed=8), seed=8)
        prepared = prepare(tree)
        clustering_rounds = prepared.clustering_stats.total_rounds
        r1 = solve_on(prepared, MaxWeightIndependentSet())
        r2 = solve_on(prepared, MinWeightVertexCover())
        r3 = solve_on(prepared, SubtreeAggregate(op="sum"))
        # the clustering is not recomputed: each additional solve costs only DP rounds
        assert r1.value == pytest.approx(sequential_max_weight_independent_set(tree))
        for r in (r1, r2, r3):
            assert r.rounds["clustering"] == clustering_rounds
            assert r.rounds["dp"] < clustering_rounds or clustering_rounds <= 4

    def test_solve_many_returns_all_results(self):
        tree = gen.with_random_weights(gen.random_attachment_tree(120, seed=9), seed=9)
        results = solve_many(tree, [MaxWeightIndependentSet(), MinWeightVertexCover()])
        assert set(results) == {"maximum-weight independent set", "minimum-weight vertex cover"}


class TestPipelineInputs:
    def test_solve_accepts_all_representations(self):
        from repro.representations import ListOfEdges, StringOfParentheses
        from repro.representations.parentheses import tree_to_parentheses
        from repro.representations.traversals import tree_to_bfs_traversal, tree_to_pointers

        tree = gen.random_attachment_tree(80, seed=10)
        expected = solve(tree, SubtreeAggregate(op="sum")).value
        for rep in (
            ListOfEdges(tree.edges(), directed=True),
            ListOfEdges(tree.edges(), directed=False),
            StringOfParentheses(tree_to_parentheses(tree)),
            tree_to_bfs_traversal(tree),
            tree_to_pointers(tree),
        ):
            root = tree.root if isinstance(rep, ListOfEdges) else None
            res = solve(rep, SubtreeAggregate(op="sum"), root=root)
            # weights are absent in re-encoded representations; compare node counts instead
            assert res.prepared.original_tree.num_nodes == tree.num_nodes

    def test_unsupported_problem_type_rejected(self):
        with pytest.raises(TypeError):
            solve(gen.path_tree(5), object())
