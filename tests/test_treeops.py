"""Tests of the distributed tree subroutines (depths, capped gather, path positions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpc.treeops import (
    capped_subtree_gather,
    compute_depths,
    degree2_path_positions,
    orient_tree_charged,
)
from repro.trees import generators as gen
from repro.trees.tree import RootedTree

from tests.conftest import FAMILIES, FAMILY_IDS, make_sim


def random_parent_map(sizes):
    """hypothesis helper: a random recursive tree as a parent map."""
    return st.integers(2, sizes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(st.integers(0, 10_000), min_size=n - 1, max_size=n - 1),
        )
    )


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
def test_compute_depths_matches_reference(family, builder):
    tree = builder(150)
    sim = make_sim(tree.num_nodes)
    depths = compute_depths(sim, dict(tree.parent), tree.root)
    assert depths == tree.depths()


def test_compute_depths_round_count_scales_with_log_depth():
    deep = gen.path_tree(256)
    shallow = gen.broom_tree(256)
    sim_deep, sim_shallow = make_sim(256), make_sim(256)
    compute_depths(sim_deep, dict(deep.parent), deep.root)
    compute_depths(sim_shallow, dict(shallow.parent), shallow.root)
    assert sim_shallow.stats.rounds < sim_deep.stats.rounds


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=120))
@settings(max_examples=25, deadline=None)
def test_compute_depths_random_trees(raw_parents):
    n = len(raw_parents) + 1
    parent = {0: 0}
    for v in range(1, n):
        parent[v] = raw_parents[v - 1] % v
    tree = RootedTree.from_parent_map(parent, root=0)
    sim = make_sim(n)
    assert compute_depths(sim, dict(tree.parent), tree.root) == tree.depths()


@pytest.mark.parametrize("family,builder", FAMILIES, ids=FAMILY_IDS)
@pytest.mark.parametrize("cap", [3, 8, 25])
def test_capped_subtree_gather(family, builder, cap):
    tree = builder(120)
    sim = make_sim(tree.num_nodes)
    info = capped_subtree_gather(sim, dict(tree.parent), tree.children_map(), tree.root, cap=cap)
    sizes = tree.subtree_sizes()
    for v in tree.nodes():
        if sizes[v] <= cap:
            assert not info[v].heavy, f"{v} wrongly heavy"
            assert info[v].size == sizes[v]
            assert len(info[v].members) == sizes[v]
            # gathered members really are the subtree
            assert all(_is_descendant(tree, u, v) for u in info[v].members)
        else:
            assert info[v].heavy, f"{v} wrongly light"


def _is_descendant(tree, u, v):
    while True:
        if u == v:
            return True
        if u == tree.root:
            return False
        u = tree.parent[u]


def test_degree2_path_positions_on_path():
    n = 60
    path_parent = {}
    path_child = {}
    for v in range(1, n - 1):
        path_parent[v] = v - 1 if v - 1 >= 1 else None
        path_child[v] = v + 1 if v + 1 <= n - 2 else None
    sim = make_sim(n)
    pos = degree2_path_positions(sim, path_parent, path_child)
    for v in range(1, n - 1):
        up_t, up_d, dn_t, dn_d = pos[v]
        assert up_t == 1 and dn_t == n - 2
        assert up_d == v - 1
        assert dn_d == (n - 2) - v


def test_degree2_path_positions_multiple_paths():
    # Two disjoint chains: 1-2-3 and 10-11-12-13.
    path_parent = {1: None, 2: 1, 3: 2, 10: None, 11: 10, 12: 11, 13: 12}
    path_child = {1: 2, 2: 3, 3: None, 10: 11, 11: 12, 12: 13, 13: None}
    sim = make_sim(32)
    pos = degree2_path_positions(sim, path_parent, path_child)
    assert pos[3] == (1, 2, 3, 0)
    assert pos[1] == (1, 0, 3, 2)
    assert pos[13] == (10, 3, 13, 0)
    assert pos[11] == (10, 1, 13, 2)


def test_degree2_path_positions_empty():
    sim = make_sim(8)
    assert degree2_path_positions(sim, {}, {}) == {}


class TestOrientation:
    def test_orients_towards_requested_root(self):
        tree = gen.random_attachment_tree(80, seed=3)
        undirected = [(c, p) for c, p in tree.edges()]
        sim = make_sim(80)
        parent, root = orient_tree_charged(sim, undirected, root=0)
        rebuilt = RootedTree.from_parent_map(parent, root=root)
        assert set(rebuilt.nodes()) == set(tree.nodes())
        assert rebuilt.depths() == tree.depths()
        assert sim.stats.charged_rounds > 0

    def test_rejects_disconnected_input(self):
        sim = make_sim(8)
        with pytest.raises(ValueError):
            orient_tree_charged(sim, [(0, 1), (2, 3)], root=0)

    def test_rejects_unknown_root(self):
        sim = make_sim(8)
        with pytest.raises(ValueError):
            orient_tree_charged(sim, [(0, 1)], root=99)
