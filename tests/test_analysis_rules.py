"""Per-rule fixture tests for the mpclint analyzer.

Every rule gets at least one true-positive fixture (findings at known
lines) and one clean fixture (zero findings).  The fixtures live in
``tests/analysis_fixtures/`` and are parsed, never imported; their
``# mpclint: module=...`` comments place them in the scope each rule
watches.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import all_rules, rule_by_name, run_analysis

FIXTURES = Path(__file__).parent / "analysis_fixtures"


def _findings(paths, select=None):
    report = run_analysis([Path(p) for p in paths], root=FIXTURES, select=select)
    return [(f.rule, f.path, f.line) for f in report.findings]


# --------------------------------------------------------------------------- #
# True positives: each bad fixture fires its rule at the expected lines
# --------------------------------------------------------------------------- #

TRUE_POSITIVES = {
    "raw-extremum": (
        [FIXTURES / "raw_extremum" / "bad.py"],
        [
            ("raw-extremum", "raw_extremum/bad.py", 7),
            ("raw-extremum", "raw_extremum/bad.py", 11),
            ("raw-extremum", "raw_extremum/bad.py", 15),
        ],
    ),
    "shm-view-escape": (
        [FIXTURES / "shm_view_escape" / "bad.py"],
        [
            ("shm-view-escape", "shm_view_escape/bad.py", 11),
            ("shm-view-escape", "shm_view_escape/bad.py", 12),
            ("shm-view-escape", "shm_view_escape/bad.py", 18),
        ],
    ),
    "stale-cache-invalidation": (
        [FIXTURES / "stale_cache" / "bad.py"],
        [
            ("stale-cache-invalidation", "stale_cache/bad.py", 6),
            ("stale-cache-invalidation", "stale_cache/bad.py", 10),
            ("stale-cache-invalidation", "stale_cache/bad.py", 14),
        ],
    ),
    "uncharged-communication": (
        [FIXTURES / "uncharged_communication" / "bad.py"],
        [
            ("uncharged-communication", "uncharged_communication/bad.py", 5),
        ],
    ),
    "worker-driver-isolation": (
        [FIXTURES / "worker_isolation" / "bad"],
        [
            (
                "worker-driver-isolation",
                "worker_isolation/bad/helper.py",
                3,
            ),
            ("worker-driver-isolation", "worker_isolation/bad/ops.py", 4),
        ],
    ),
    "backend-literal-parity": (
        [FIXTURES / "backend_parity" / "bad"],
        [
            ("backend-literal-parity", "backend_parity/bad/dispatch.py", 7),
            ("backend-literal-parity", "backend_parity/bad/dispatch.py", 16),
        ],
    ),
    "unbounded-wait": (
        [FIXTURES / "unbounded_wait" / "bad.py"],
        [
            ("unbounded-wait", "unbounded_wait/bad.py", 6),
            ("unbounded-wait", "unbounded_wait/bad.py", 13),
            ("unbounded-wait", "unbounded_wait/bad.py", 20),
        ],
    ),
    "untraced-clock": (
        [FIXTURES / "untraced_clock" / "bad.py"],
        [
            ("untraced-clock", "untraced_clock/bad.py", 5),
            ("untraced-clock", "untraced_clock/bad.py", 9),
            ("untraced-clock", "untraced_clock/bad.py", 13),
            ("untraced-clock", "untraced_clock/bad.py", 19),
        ],
    ),
}

CLEAN = {
    "raw-extremum": [FIXTURES / "raw_extremum" / "good.py"],
    "shm-view-escape": [FIXTURES / "shm_view_escape" / "good.py"],
    "stale-cache-invalidation": [FIXTURES / "stale_cache" / "good.py"],
    "uncharged-communication": [FIXTURES / "uncharged_communication" / "good.py"],
    "worker-driver-isolation": [FIXTURES / "worker_isolation" / "good"],
    "backend-literal-parity": [FIXTURES / "backend_parity" / "good"],
    "unbounded-wait": [FIXTURES / "unbounded_wait" / "good.py"],
    "untraced-clock": [FIXTURES / "untraced_clock" / "good.py"],
}


@pytest.mark.parametrize("rule", sorted(TRUE_POSITIVES))
def test_true_positive_fixture(rule):
    paths, expected = TRUE_POSITIVES[rule]
    assert _findings(paths) == expected


@pytest.mark.parametrize("rule", sorted(CLEAN))
def test_clean_fixture(rule):
    assert _findings(CLEAN[rule]) == []


# --------------------------------------------------------------------------- #
# config-docs-drift needs a docs file relative to the project root, so its
# scenarios pass the fixture directory as the root explicitly.
# --------------------------------------------------------------------------- #


def test_config_docs_true_positive():
    root = FIXTURES / "config_docs" / "bad"
    report = run_analysis([root], root=root)
    assert [(f.rule, f.path, f.line) for f in report.findings] == [
        ("config-docs-drift", "config.py", 7)
    ]
    assert "delta" in report.findings[0].message


def test_config_docs_clean():
    root = FIXTURES / "config_docs" / "good"
    report = run_analysis([root], root=root)
    assert report.findings == []


def test_config_docs_missing_docs_file(tmp_path):
    (tmp_path / "config.py").write_text(
        "# mpclint: module=repro.mpc.config\n"
        "class MPCConfig:\n"
        "    n: int = 0\n",
        encoding="utf-8",
    )
    report = run_analysis([tmp_path], root=tmp_path)
    assert [f.rule for f in report.findings] == ["config-docs-drift"]
    assert "docs/CONFIG.md" in report.findings[0].message


# --------------------------------------------------------------------------- #
# Registry sanity
# --------------------------------------------------------------------------- #


def test_every_rule_is_fixture_backed():
    covered = set(TRUE_POSITIVES) | set(CLEAN) | {"config-docs-drift"}
    assert {r.meta.name for r in all_rules()} == covered


def test_rule_metadata_complete():
    for rule in all_rules():
        assert rule.meta.name
        assert rule.meta.summary
        assert rule.meta.rationale
        assert rule_by_name(rule.meta.name) is rule


def test_select_restricts_rules():
    paths, expected = TRUE_POSITIVES["raw-extremum"]
    assert _findings(paths, select=["raw-extremum"]) == expected
    assert _findings(paths, select=["shm-view-escape"]) == []
